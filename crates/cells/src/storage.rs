//! Storage-loop cells: DFF, DFF2, and NDRO.

use usfq_sim::component::{BurstStep, Component, Ctx, Hazard, StaticMeta};
use usfq_sim::stats::StatKind;
use usfq_sim::{Burst, Time};

use crate::catalog;

/// A destructive-read D flip-flop (paper Table 1): a pulse at `S` stores a
/// "1" in the SQUID loop; a pulse at `R` (the read/clock port) resets the
/// loop and, if it held a "1", emits an output pulse.
#[derive(Debug, Clone)]
pub struct Dff {
    name: String,
    state: bool,
    delay: Time,
}

impl Dff {
    /// Set (data) port.
    pub const IN_S: usize = 0;
    /// Reset/read (clock) port.
    pub const IN_R: usize = 1;
    /// Output port.
    pub const OUT_Q: usize = 0;

    /// Creates a DFF in the "0" state.
    pub fn new(name: impl Into<String>) -> Self {
        Dff {
            name: name.into(),
            state: false,
            delay: catalog::t_ff(),
        }
    }

    /// Current stored bit.
    pub fn state(&self) -> bool {
        self.state
    }
}

impl Component for Dff {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_inputs(&self) -> usize {
        2
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn jj_count(&self) -> u32 {
        catalog::JJ_DFF
    }
    fn on_pulse(&mut self, port: usize, _now: Time, ctx: &mut Ctx) {
        match port {
            Self::IN_S => {
                if self.state {
                    ctx.record(StatKind::IgnoredPulse);
                } else {
                    self.state = true;
                }
            }
            Self::IN_R => {
                if self.state {
                    self.state = false;
                    ctx.emit(Self::OUT_Q, self.delay);
                }
            }
            _ => unreachable!("DFF has two inputs"),
        }
    }
    fn step_burst(&mut self, port: usize, burst: &Burst, ctx: &mut Ctx) -> BurstStep {
        match port {
            Self::IN_S => {
                // Only the first set pulse of an empty loop lands; every
                // other pulse of the train is ignored.
                let ignored = burst.count() - u64::from(!self.state);
                self.state = true;
                ctx.record_many(StatKind::IgnoredPulse, ignored);
            }
            Self::IN_R => {
                // The first read drains the loop; the rest see a "0".
                if self.state {
                    self.state = false;
                    ctx.emit_burst(Self::OUT_Q, burst.prefix(1).delayed(self.delay));
                }
            }
            _ => unreachable!("DFF has two inputs"),
        }
        BurstStep::Consumed
    }
    fn reset(&mut self) {
        self.state = false;
    }
    fn static_meta(&self) -> StaticMeta {
        StaticMeta::new("dff", self.delay).with_hazard(Hazard::Setup {
            control: Self::IN_S,
            sampled: Self::IN_R,
            window: self.delay,
        })
    }
}

/// A dual-read D flip-flop (paper Table 1): `A` sets the SQUID; a pulse at
/// `C1` (`C2`) resets it and, if set, emits on `Y1` (`Y2`). The balancer
/// output stage is built from two of these.
#[derive(Debug, Clone)]
pub struct Dff2 {
    name: String,
    state: bool,
    delay: Time,
}

impl Dff2 {
    /// Set port.
    pub const IN_A: usize = 0;
    /// Read-and-reset port steering to `Y1`.
    pub const IN_C1: usize = 1;
    /// Read-and-reset port steering to `Y2`.
    pub const IN_C2: usize = 2;
    /// Output read by `C1`.
    pub const OUT_Y1: usize = 0;
    /// Output read by `C2`.
    pub const OUT_Y2: usize = 1;

    /// Creates a DFF2 in the "0" state.
    pub fn new(name: impl Into<String>) -> Self {
        Dff2 {
            name: name.into(),
            state: false,
            delay: catalog::t_ff(),
        }
    }
}

impl Component for Dff2 {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_inputs(&self) -> usize {
        3
    }
    fn num_outputs(&self) -> usize {
        2
    }
    fn jj_count(&self) -> u32 {
        catalog::JJ_DFF2
    }
    fn on_pulse(&mut self, port: usize, _now: Time, ctx: &mut Ctx) {
        match port {
            Self::IN_A => {
                if self.state {
                    ctx.record(StatKind::IgnoredPulse);
                } else {
                    self.state = true;
                }
            }
            Self::IN_C1 => {
                if self.state {
                    self.state = false;
                    ctx.emit(Self::OUT_Y1, self.delay);
                }
            }
            Self::IN_C2 => {
                if self.state {
                    self.state = false;
                    ctx.emit(Self::OUT_Y2, self.delay);
                }
            }
            _ => unreachable!("DFF2 has three inputs"),
        }
    }
    fn step_burst(&mut self, port: usize, burst: &Burst, ctx: &mut Ctx) -> BurstStep {
        match port {
            Self::IN_A => {
                let ignored = burst.count() - u64::from(!self.state);
                self.state = true;
                ctx.record_many(StatKind::IgnoredPulse, ignored);
            }
            Self::IN_C1 | Self::IN_C2 => {
                if self.state {
                    self.state = false;
                    let out = if port == Self::IN_C1 {
                        Self::OUT_Y1
                    } else {
                        Self::OUT_Y2
                    };
                    ctx.emit_burst(out, burst.prefix(1).delayed(self.delay));
                }
            }
            _ => unreachable!("DFF2 has three inputs"),
        }
        BurstStep::Consumed
    }
    fn reset(&mut self) {
        self.state = false;
    }
    fn static_meta(&self) -> StaticMeta {
        StaticMeta::new("dff2", self.delay)
            .with_hazard(Hazard::Setup {
                control: Self::IN_A,
                sampled: Self::IN_C1,
                window: self.delay,
            })
            .with_hazard(Hazard::Setup {
                control: Self::IN_A,
                sampled: Self::IN_C2,
                window: self.delay,
            })
    }
}

/// A non-destructive read-out cell (paper Table 1): `S`/`R` set and reset
/// an internal loop; each pulse at `CLK` reads the state *without*
/// altering it, emitting on `Q` when the loop holds a "1".
///
/// This is the workhorse of the U-SFQ multiplier (the RL operand gates a
/// pulse stream through the CLK port) and of the coefficient memory bank.
#[derive(Debug, Clone)]
pub struct Ndro {
    name: String,
    state: bool,
    delay: Time,
}

impl Ndro {
    /// Set port.
    pub const IN_S: usize = 0;
    /// Reset port.
    pub const IN_R: usize = 1;
    /// Non-destructive read (clock) port.
    pub const IN_CLK: usize = 2;
    /// Output port.
    pub const OUT_Q: usize = 0;

    /// Creates an NDRO in the "0" state.
    pub fn new(name: impl Into<String>) -> Self {
        Ndro {
            name: name.into(),
            state: false,
            delay: catalog::t_ff(),
        }
    }

    /// Creates an NDRO already holding a "1" (e.g. pre-set by the epoch
    /// marker, as in the unipolar multiplier).
    pub fn new_set(name: impl Into<String>) -> Self {
        Ndro {
            state: true,
            ..Ndro::new(name)
        }
    }

    /// Current stored bit.
    pub fn state(&self) -> bool {
        self.state
    }
}

impl Component for Ndro {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_inputs(&self) -> usize {
        3
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn jj_count(&self) -> u32 {
        catalog::JJ_NDRO
    }
    /// Calibrated (together with the splitter and inverter weights) so
    /// the event-counted bipolar multiplier lands in the paper's
    /// measured 68–135 nW Fig. 21 active-power band.
    fn switching_jjs(&self) -> f64 {
        2.0
    }
    fn on_pulse(&mut self, port: usize, _now: Time, ctx: &mut Ctx) {
        match port {
            Self::IN_S => self.state = true,
            Self::IN_R => self.state = false,
            Self::IN_CLK => {
                if self.state {
                    ctx.emit(Self::OUT_Q, self.delay);
                }
            }
            _ => unreachable!("NDRO has three inputs"),
        }
    }
    fn step_burst(&mut self, port: usize, burst: &Burst, ctx: &mut Ctx) -> BurstStep {
        match port {
            Self::IN_S => self.state = true,
            Self::IN_R => self.state = false,
            Self::IN_CLK => {
                // Non-destructive read: the whole clock train gates
                // through (or is absorbed) according to the stored bit.
                if self.state {
                    ctx.emit_burst(Self::OUT_Q, burst.delayed(self.delay));
                }
            }
            _ => unreachable!("NDRO has three inputs"),
        }
        BurstStep::Consumed
    }
    fn reset(&mut self) {
        self.state = false;
    }
    fn static_meta(&self) -> StaticMeta {
        StaticMeta::new("ndro", self.delay)
            .with_hazard(Hazard::Setup {
                control: Self::IN_S,
                sampled: Self::IN_CLK,
                window: self.delay,
            })
            .with_hazard(Hazard::Setup {
                control: Self::IN_R,
                sampled: Self::IN_CLK,
                window: self.delay,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usfq_sim::{Circuit, Simulator};

    #[test]
    fn dff_stores_and_releases() {
        let mut c = Circuit::new();
        let d_in = c.input("d");
        let clk = c.input("clk");
        let dff = c.add(Dff::new("dff"));
        c.connect_input(d_in, dff.input(Dff::IN_S), Time::ZERO)
            .unwrap();
        c.connect_input(clk, dff.input(Dff::IN_R), Time::ZERO)
            .unwrap();
        let q = c.probe(dff.output(Dff::OUT_Q), "q");
        let mut sim = Simulator::new(c);
        // Clock with nothing stored: no output.
        sim.schedule_input(clk, Time::from_ps(10.0)).unwrap();
        // Store then clock: one output.
        sim.schedule_input(d_in, Time::from_ps(20.0)).unwrap();
        sim.schedule_input(clk, Time::from_ps(30.0)).unwrap();
        // Clock again: state was destroyed, no output.
        sim.schedule_input(clk, Time::from_ps(40.0)).unwrap();
        sim.run().unwrap();
        assert_eq!(sim.probe_count(q), 1);
    }

    #[test]
    fn dff_double_set_records_ignored_pulse() {
        let mut dff = Dff::new("d");
        let mut ctx = Ctx::default();
        dff.on_pulse(Dff::IN_S, Time::ZERO, &mut ctx);
        dff.on_pulse(Dff::IN_S, Time::from_ps(1.0), &mut ctx);
        assert_eq!(ctx.stats(), &[StatKind::IgnoredPulse]);
        assert!(dff.state());
        dff.reset();
        assert!(!dff.state());
    }

    #[test]
    fn dff2_steers_reads() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let c1 = c.input("c1");
        let c2 = c.input("c2");
        let ff = c.add(Dff2::new("ff"));
        c.connect_input(a, ff.input(Dff2::IN_A), Time::ZERO)
            .unwrap();
        c.connect_input(c1, ff.input(Dff2::IN_C1), Time::ZERO)
            .unwrap();
        c.connect_input(c2, ff.input(Dff2::IN_C2), Time::ZERO)
            .unwrap();
        let y1 = c.probe(ff.output(Dff2::OUT_Y1), "y1");
        let y2 = c.probe(ff.output(Dff2::OUT_Y2), "y2");
        let mut sim = Simulator::new(c);
        sim.schedule_input(a, Time::from_ps(0.0)).unwrap();
        sim.schedule_input(c1, Time::from_ps(10.0)).unwrap(); // reads to Y1
        sim.schedule_input(a, Time::from_ps(20.0)).unwrap();
        sim.schedule_input(c2, Time::from_ps(30.0)).unwrap(); // reads to Y2
        sim.schedule_input(c1, Time::from_ps(40.0)).unwrap(); // empty: nothing
        sim.run().unwrap();
        assert_eq!(sim.probe_count(y1), 1);
        assert_eq!(sim.probe_count(y2), 1);
    }

    #[test]
    fn ndro_read_is_non_destructive() {
        let mut c = Circuit::new();
        let s = c.input("s");
        let r = c.input("r");
        let clk = c.input("clk");
        let n = c.add(Ndro::new("n"));
        c.connect_input(s, n.input(Ndro::IN_S), Time::ZERO).unwrap();
        c.connect_input(r, n.input(Ndro::IN_R), Time::ZERO).unwrap();
        c.connect_input(clk, n.input(Ndro::IN_CLK), Time::ZERO)
            .unwrap();
        let q = c.probe(n.output(Ndro::OUT_Q), "q");
        let mut sim = Simulator::new(c);
        sim.schedule_input(s, Time::from_ps(0.0)).unwrap();
        // Three reads while set: three outputs.
        for t in [10.0, 20.0, 30.0] {
            sim.schedule_input(clk, Time::from_ps(t)).unwrap();
        }
        sim.schedule_input(r, Time::from_ps(40.0)).unwrap();
        // Two reads while reset: nothing.
        for t in [50.0, 60.0] {
            sim.schedule_input(clk, Time::from_ps(t)).unwrap();
        }
        sim.run().unwrap();
        assert_eq!(sim.probe_count(q), 3);
    }

    #[test]
    fn ndro_new_set_starts_high() {
        let mut n = Ndro::new_set("n");
        assert!(n.state());
        let mut ctx = Ctx::default();
        n.on_pulse(Ndro::IN_CLK, Time::ZERO, &mut ctx);
        assert_eq!(ctx.emissions().len(), 1);
        n.reset();
        assert!(!n.state());
    }
}
