//! Pulse streams: numbers encoded as uniform pulse rates.

use usfq_sim::{Burst, Time};

use crate::epoch::Epoch;
use crate::error::EncodingError;

/// A pulse stream: `count` pulses at a uniform rate within an epoch.
///
/// The paper's stream encoding (§3.2) maps `p ∈ [0, 1]` to `p · N_max`
/// pulses per epoch, each carrying weight `1 / N_max`; uniform spacing is
/// what makes RL-gated multiplication exact (§4.1). Bipolar values map
/// through `(x + 1) / 2` as in stochastic computing.
///
/// [`PulseStream::schedule_from`] materialises the pulse instants with
/// centred uniform spacing — pulse `k` of `n` at `(k + ½) · T / n` — so a
/// race-logic gate at fraction `f` of the epoch passes `⌊f·n + ½⌋`
/// pulses, the correctly rounded product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PulseStream {
    count: u64,
    epoch: Epoch,
}

impl PulseStream {
    /// Encodes a unipolar value, rounding to the nearest pulse count.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::OutOfRange`] unless `0 <= x <= 1`.
    pub fn from_unipolar(x: f64, epoch: Epoch) -> Result<Self, EncodingError> {
        Ok(PulseStream {
            count: epoch.quantize_unipolar(x)?,
            epoch,
        })
    }

    /// Encodes a bipolar value through the paper's `(x + 1) / 2` mapping.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::OutOfRange`] unless `−1 <= x <= 1`.
    pub fn from_bipolar(x: f64, epoch: Epoch) -> Result<Self, EncodingError> {
        Ok(PulseStream {
            count: epoch.quantize_bipolar(x)?,
            epoch,
        })
    }

    /// Creates a stream directly from a pulse count.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::SlotOutOfEpoch`] if `count > N_max`.
    pub fn from_count(count: u64, epoch: Epoch) -> Result<Self, EncodingError> {
        if count > epoch.n_max() {
            return Err(EncodingError::SlotOutOfEpoch {
                slot: count,
                n_max: epoch.n_max(),
            });
        }
        Ok(PulseStream { count, epoch })
    }

    /// Decodes a stream by counting observed pulses.
    ///
    /// This is how U-SFQ results are read out: count and divide by
    /// `N_max`. Counts above `N_max` are clamped (they can only arise
    /// from fault injection).
    pub fn from_observed(pulses: &[Time], epoch: Epoch) -> Self {
        PulseStream {
            count: (pulses.len() as u64).min(epoch.n_max()),
            epoch,
        }
    }

    /// Number of pulses in the epoch.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The epoch this stream lives in.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Unipolar reading, `count / N_max ∈ [0, 1]`.
    pub fn value(&self) -> f64 {
        self.epoch.dequantize_unipolar(self.count)
    }

    /// Bipolar reading, `2·value − 1 ∈ [−1, 1]`.
    pub fn value_bipolar(&self) -> f64 {
        self.epoch.dequantize_bipolar(self.count)
    }

    /// Pulse instants for an epoch starting at `epoch_start`, centred
    /// uniform spacing.
    pub fn schedule_from(&self, epoch_start: Time) -> Vec<Time> {
        let n = self.count;
        if n == 0 {
            return Vec::new();
        }
        let duration_fs = self.epoch.duration().as_fs();
        (0..n)
            .map(|k| {
                // (k + 1/2) · T / n without floating-point drift.
                let offset = ((2 * k + 1) as u128 * duration_fs as u128 / (2 * n) as u128) as u64;
                epoch_start + Time::from_fs(offset)
            })
            .collect()
    }

    /// Pulse instants on the epoch's slot grid (what a PNM generates):
    /// the stream's pulses occupy `count` of the `N_max` slot boundaries,
    /// chosen maximally spread.
    pub fn schedule_on_grid(&self, epoch_start: Time) -> Vec<Time> {
        let n = self.count;
        if n == 0 {
            return Vec::new();
        }
        let n_max = self.epoch.n_max();
        let slot = self.epoch.slot_width();
        (0..n)
            .map(|k| {
                let slot_id = ((2 * k + 1) as u128 * n_max as u128 / (2 * n) as u128) as u64;
                epoch_start + slot.scale(slot_id)
            })
            .collect()
    }

    /// The [`PulseStream::schedule_from`] train as one coalesced
    /// [`Burst`]: pulse `k` at
    /// `epoch_start + floor((2k+1)·T / 2n)` fs, bit-identical to the
    /// materialised vector.
    pub fn burst_from(&self, epoch_start: Time) -> Burst {
        let n = self.count;
        if n == 0 {
            return Burst::uniform(epoch_start, Time::ZERO, 0);
        }
        let d = self.epoch.duration().as_fs();
        Burst::rational(epoch_start, 1, d, 2 * d, 2 * n, n)
    }

    /// The [`PulseStream::schedule_on_grid`] train as one coalesced
    /// [`Burst`]: pulse `k` on slot boundary `floor((2k+1)·N_max / 2n)`.
    pub fn burst_on_grid(&self, epoch_start: Time) -> Burst {
        let n = self.count;
        if n == 0 {
            return Burst::uniform(epoch_start, Time::ZERO, 0);
        }
        let n_max = self.epoch.n_max();
        let slot = self.epoch.slot_width();
        Burst::rational(epoch_start, slot.as_fs(), n_max, 2 * n_max, 2 * n, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn epoch(bits: u32) -> Epoch {
        Epoch::with_slot(bits, Time::from_ps(10.0)).unwrap()
    }

    #[test]
    fn encode_decode() {
        let e = epoch(4);
        let s = PulseStream::from_unipolar(0.75, e).unwrap();
        assert_eq!(s.count(), 12);
        assert_eq!(s.value(), 0.75);
        assert_eq!(s.value_bipolar(), 0.5);
        assert_eq!(s.epoch(), e);
    }

    #[test]
    fn from_count_bounds() {
        let e = epoch(4);
        assert!(PulseStream::from_count(16, e).is_ok());
        assert!(PulseStream::from_count(17, e).is_err());
    }

    #[test]
    fn schedule_is_uniform_and_in_epoch() {
        let e = epoch(4);
        let s = PulseStream::from_count(8, e).unwrap();
        let times = s.schedule_from(Time::ZERO);
        assert_eq!(times.len(), 8);
        // 16 slots × 10 ps = 160 ps epoch; 8 pulses at 10, 30, … 150 ps.
        assert_eq!(times[0], Time::from_ps(10.0));
        assert_eq!(times[7], Time::from_ps(150.0));
        let spacing = times[1] - times[0];
        for w in times.windows(2) {
            assert_eq!(w[1] - w[0], spacing);
        }
        assert!(*times.last().unwrap() < e.duration());
    }

    #[test]
    fn empty_stream_schedules_nothing() {
        let e = epoch(4);
        let s = PulseStream::from_unipolar(0.0, e).unwrap();
        assert!(s.schedule_from(Time::ZERO).is_empty());
        assert!(s.schedule_on_grid(Time::ZERO).is_empty());
    }

    #[test]
    fn observed_roundtrip_and_clamp() {
        let e = epoch(2);
        let s = PulseStream::from_count(3, e).unwrap();
        let times = s.schedule_from(Time::ZERO);
        let back = PulseStream::from_observed(&times, e);
        assert_eq!(back, s);
        let too_many: Vec<Time> = (0..10).map(|i| Time::from_ps(i as f64)).collect();
        assert_eq!(PulseStream::from_observed(&too_many, e).count(), 4);
    }

    #[test]
    fn grid_schedule_lands_on_slots() {
        let e = epoch(3);
        let s = PulseStream::from_count(3, e).unwrap();
        for t in s.schedule_on_grid(Time::ZERO) {
            assert_eq!(t.as_fs() % e.slot_width().as_fs(), 0);
        }
    }

    /// Gating a uniform stream at fraction `f` of the epoch passes the
    /// correctly rounded product — the property the multiplier rests on.
    #[test]
    fn prefix_counts_track_product() {
        let e = epoch(6); // 64 slots
        for &p in &[0.25, 0.5, 0.75, 1.0] {
            let s = PulseStream::from_unipolar(p, e).unwrap();
            let times = s.schedule_from(Time::ZERO);
            for &f in &[0.0, 0.25, 0.5, 0.75, 1.0] {
                let gate = Time::from_fs((e.duration().as_fs() as f64 * f) as u64);
                let passed = times.iter().filter(|&&t| t < gate).count() as f64;
                let ideal = p * f * e.n_max() as f64;
                assert!(
                    (passed - ideal).abs() <= 1.0,
                    "p={p} f={f}: passed {passed}, ideal {ideal}"
                );
            }
        }
    }

    #[test]
    fn burst_matches_schedule_exactly() {
        for bits in [1u32, 3, 4, 7] {
            let e = epoch(bits);
            for count in [0, 1, 2, 3, e.n_max() / 2, e.n_max()] {
                if count > e.n_max() {
                    continue;
                }
                let s = PulseStream::from_count(count, e).unwrap();
                let start = Time::from_ns(2.0);
                let b = s.burst_from(start);
                assert_eq!(b.count(), count);
                assert_eq!(
                    b.iter_times().collect::<Vec<_>>(),
                    s.schedule_from(start),
                    "bits={bits} count={count}"
                );
                let g = s.burst_on_grid(start);
                assert_eq!(
                    g.iter_times().collect::<Vec<_>>(),
                    s.schedule_on_grid(start),
                    "grid bits={bits} count={count}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn burst_equivalence(bits in 1u32..=10, frac in 0.0f64..=1.0) {
            let e = Epoch::from_bits(bits).unwrap();
            let s = PulseStream::from_unipolar(frac, e).unwrap();
            let start = Time::from_ps(123.0);
            prop_assert_eq!(
                s.burst_from(start).iter_times().collect::<Vec<_>>(),
                s.schedule_from(start)
            );
            prop_assert_eq!(
                s.burst_on_grid(start).iter_times().collect::<Vec<_>>(),
                s.schedule_on_grid(start)
            );
        }

        #[test]
        fn stream_roundtrip(bits in 1u32..=16, x in 0.0f64..=1.0) {
            let e = Epoch::from_bits(bits).unwrap();
            let s = PulseStream::from_unipolar(x, e).unwrap();
            prop_assert!((s.value() - x).abs() <= 0.5 * e.lsb() + 1e-12);
        }

        #[test]
        fn schedule_count_matches(bits in 1u32..=10, frac in 0.0f64..=1.0) {
            let e = Epoch::from_bits(bits).unwrap();
            let s = PulseStream::from_unipolar(frac, e).unwrap();
            prop_assert_eq!(s.schedule_from(Time::ZERO).len() as u64, s.count());
            prop_assert_eq!(s.schedule_on_grid(Time::ZERO).len() as u64, s.count());
        }

        #[test]
        fn schedule_is_sorted_and_within_epoch(bits in 1u32..=10, frac in 0.0f64..=1.0) {
            let e = Epoch::from_bits(bits).unwrap();
            let s = PulseStream::from_unipolar(frac, e).unwrap();
            let times = s.schedule_from(Time::from_ns(1.0));
            for w in times.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            if let Some(&last) = times.last() {
                prop_assert!(last < Time::from_ns(1.0) + e.duration());
            }
        }

        /// Prefix-count property over random gates: |passed − p·f·N| ≤ 1.
        #[test]
        fn gated_prefix_is_product(bits in 2u32..=10, p in 0.0f64..=1.0, f in 0.0f64..=1.0) {
            let e = Epoch::from_bits(bits).unwrap();
            let s = PulseStream::from_unipolar(p, e).unwrap();
            let times = s.schedule_from(Time::ZERO);
            let gate = Time::from_fs((e.duration().as_fs() as f64 * f) as u64);
            let passed = times.iter().filter(|&&t| t < gate).count() as f64;
            let ideal = s.value() * f * e.n_max() as f64;
            prop_assert!((passed - ideal).abs() <= 1.0 + 1e-9);
        }
    }
}
