//! Race-logic values: numbers encoded as pulse arrival times.

use usfq_sim::Time;

use crate::epoch::Epoch;
use crate::error::EncodingError;

/// A race-logic value: one pulse whose arrival slot encodes the number.
///
/// The paper's RL encoding (§3.1) divides the epoch into `N_max` slots
/// and represents unipolar `x` as a pulse in slot `x · N_max`; bipolar
/// values map through `p_u = (p_b + 1) / 2`. A slot of `N_max` (pulse at
/// the epoch end) encodes exactly 1.0; the value 0 is a pulse at the
/// epoch start.
///
/// RL arithmetic mirrors the temporal cells: [`RlValue::min`] is the
/// first-arrival cell, [`RlValue::max`] the last-arrival cell, and
/// [`RlValue::saturating_add_const`] a delay line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RlValue {
    slot: u64,
    epoch: Epoch,
}

impl RlValue {
    /// Encodes a unipolar value, rounding to the nearest slot.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::OutOfRange`] unless `0 <= x <= 1`.
    pub fn from_unipolar(x: f64, epoch: Epoch) -> Result<Self, EncodingError> {
        Ok(RlValue {
            slot: epoch.quantize_unipolar(x)?,
            epoch,
        })
    }

    /// Encodes a bipolar value through the paper's `(x + 1) / 2` mapping.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::OutOfRange`] unless `−1 <= x <= 1`.
    pub fn from_bipolar(x: f64, epoch: Epoch) -> Result<Self, EncodingError> {
        Ok(RlValue {
            slot: epoch.quantize_bipolar(x)?,
            epoch,
        })
    }

    /// Creates a value directly from a slot id.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::SlotOutOfEpoch`] if `slot > N_max`.
    pub fn from_slot(slot: u64, epoch: Epoch) -> Result<Self, EncodingError> {
        epoch.slot_time(slot)?;
        Ok(RlValue { slot, epoch })
    }

    /// Decodes a pulse observed at `t`, relative to an epoch starting at
    /// `epoch_start`, rounding to the nearest slot.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::SlotOutOfEpoch`] if `t` lies after the
    /// epoch's end (tolerating half a slot of jitter).
    pub fn from_pulse_time(
        t: Time,
        epoch_start: Time,
        epoch: Epoch,
    ) -> Result<Self, EncodingError> {
        let offset = t.saturating_sub(epoch_start);
        let slot_fs = epoch.slot_width().as_fs();
        let slot = (offset.as_fs() + slot_fs / 2) / slot_fs;
        Self::from_slot(slot, epoch)
    }

    /// The slot id.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The epoch this value lives in.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Unipolar reading, `slot / N_max ∈ [0, 1]`.
    pub fn value(&self) -> f64 {
        self.epoch.dequantize_unipolar(self.slot)
    }

    /// Bipolar reading, `2·value − 1 ∈ [−1, 1]`.
    pub fn value_bipolar(&self) -> f64 {
        self.epoch.dequantize_bipolar(self.slot)
    }

    /// Absolute pulse time for an epoch starting at `epoch_start`.
    pub fn pulse_time_from(&self, epoch_start: Time) -> Time {
        epoch_start + self.epoch.slot_width().scale(self.slot)
    }

    /// Race-logic minimum — what a first-arrival cell computes.
    ///
    /// # Panics
    ///
    /// Panics if the operands live in different epochs.
    pub fn min(self, other: RlValue) -> RlValue {
        assert_eq!(self.epoch, other.epoch, "RL min across different epochs");
        if self.slot <= other.slot {
            self
        } else {
            other
        }
    }

    /// Race-logic maximum — what a last-arrival cell computes.
    ///
    /// # Panics
    ///
    /// Panics if the operands live in different epochs.
    pub fn max(self, other: RlValue) -> RlValue {
        assert_eq!(self.epoch, other.epoch, "RL max across different epochs");
        if self.slot >= other.slot {
            self
        } else {
            other
        }
    }

    /// Adds a constant number of slots (a delay line), saturating at the
    /// epoch end — the RL "add constant" primitive.
    pub fn saturating_add_const(self, slots: u64) -> RlValue {
        RlValue {
            slot: (self.slot + slots).min(self.epoch.n_max()),
            epoch: self.epoch,
        }
    }

    /// Temporal-logic *inhibit*: `Some(self)` if this pulse beats the
    /// inhibitor (strictly earlier), `None` if it is suppressed — what
    /// an [`Inhibit`]-style cell computes.
    ///
    /// [`Inhibit`]: https://doi.org/10.1145/3373376.3378517
    ///
    /// # Panics
    ///
    /// Panics if the operands live in different epochs.
    pub fn inhibit(self, inhibitor: RlValue) -> Option<RlValue> {
        assert_eq!(
            self.epoch, inhibitor.epoch,
            "RL inhibit across different epochs"
        );
        (self.slot < inhibitor.slot).then_some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn epoch4() -> Epoch {
        Epoch::from_bits(4).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let e = epoch4();
        let v = RlValue::from_unipolar(0.5, e).unwrap();
        assert_eq!(v.slot(), 8);
        assert_eq!(v.value(), 0.5);
        assert_eq!(v.value_bipolar(), 0.0);
        assert_eq!(v.epoch(), e);
    }

    #[test]
    fn pulse_time_roundtrip() {
        let e = Epoch::with_slot(4, Time::from_ps(10.0)).unwrap();
        let v = RlValue::from_unipolar(0.25, e).unwrap();
        let start = Time::from_ns(1.0);
        let t = v.pulse_time_from(start);
        assert_eq!(t, Time::from_ps(1040.0));
        let back = RlValue::from_pulse_time(t, start, e).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pulse_time_tolerates_jitter() {
        let e = Epoch::with_slot(4, Time::from_ps(10.0)).unwrap();
        let start = Time::ZERO;
        // 42 ps with 10 ps slots reads as slot 4.
        let v = RlValue::from_pulse_time(Time::from_ps(42.0), start, e).unwrap();
        assert_eq!(v.slot(), 4);
        // Beyond epoch end + tolerance: error.
        assert!(RlValue::from_pulse_time(Time::from_ps(166.0), start, e).is_err());
    }

    #[test]
    fn min_max_match_fa_la() {
        let e = epoch4();
        let a = RlValue::from_slot(2, e).unwrap();
        let b = RlValue::from_slot(3, e).unwrap();
        assert_eq!(a.min(b), a); // paper Fig. 2a: min(2, 3) = 2
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn add_const_saturates() {
        let e = epoch4();
        let a = RlValue::from_slot(14, e).unwrap();
        assert_eq!(a.saturating_add_const(1).slot(), 15);
        assert_eq!(a.saturating_add_const(100).slot(), 16);
    }

    #[test]
    fn inhibit_semantics() {
        let e = epoch4();
        let early = RlValue::from_slot(3, e).unwrap();
        let late = RlValue::from_slot(9, e).unwrap();
        assert_eq!(early.inhibit(late), Some(early));
        assert_eq!(late.inhibit(early), None);
        // Ties suppress (the inhibitor wins simultaneous arrivals).
        assert_eq!(early.inhibit(early), None);
    }

    #[test]
    #[should_panic(expected = "different epochs")]
    fn cross_epoch_min_panics() {
        let a = RlValue::from_slot(1, Epoch::from_bits(4).unwrap()).unwrap();
        let b = RlValue::from_slot(1, Epoch::from_bits(8).unwrap()).unwrap();
        let _ = a.min(b);
    }

    proptest! {
        #[test]
        fn rl_roundtrip(bits in 1u32..=16, x in 0.0f64..=1.0) {
            let e = Epoch::from_bits(bits).unwrap();
            let v = RlValue::from_unipolar(x, e).unwrap();
            prop_assert!((v.value() - x).abs() <= 0.5 * e.lsb() + 1e-12);
        }

        #[test]
        fn min_is_commutative_and_le(sa in 0u64..=16, sb in 0u64..=16) {
            let e = epoch4();
            let a = RlValue::from_slot(sa, e).unwrap();
            let b = RlValue::from_slot(sb, e).unwrap();
            prop_assert_eq!(a.min(b), b.min(a));
            prop_assert!(a.min(b).slot() <= a.slot());
            prop_assert!(a.max(b).slot() >= b.slot());
        }

        #[test]
        fn pulse_time_roundtrips_any_slot(bits in 1u32..=12, frac in 0.0f64..=1.0) {
            let e = Epoch::from_bits(bits).unwrap();
            let slot = (frac * e.n_max() as f64) as u64;
            let v = RlValue::from_slot(slot, e).unwrap();
            let t = v.pulse_time_from(Time::ZERO);
            let back = RlValue::from_pulse_time(t, Time::ZERO, e).unwrap();
            prop_assert_eq!(back.slot(), slot);
        }
    }
}
