//! The computing epoch: resolution, slot width, and quantization.

use usfq_sim::Time;

use crate::error::EncodingError;

/// Maximum supported resolution. 2^24 pulses per epoch keeps worst-case
/// event counts tractable while covering the paper's 2–16 bit sweeps.
pub const MAX_BITS: u32 = 24;

/// Default slot width: the paper's measured t_INV = 9 ps, which limits
/// the unary multiplier's pulse rate to ≈ 111 GHz (§4.1).
pub const DEFAULT_SLOT: Time = Time::from_fs(9_000);

/// A computing epoch: `N_max = 2^bits` time slots of fixed width.
///
/// Everything in U-SFQ is relative to an epoch — an RL value is a slot
/// index, a pulse stream's value is a pulse count out of `N_max`, and a
/// block's latency is the epoch duration for its slot width.
///
/// `Epoch` is `Copy` and cheap; it is carried inside every encoded value
/// so mixed-epoch arithmetic can be rejected.
///
/// # Examples
///
/// ```
/// use usfq_encoding::Epoch;
///
/// # fn main() -> Result<(), usfq_encoding::EncodingError> {
/// let e = Epoch::from_bits(8)?;
/// assert_eq!(e.n_max(), 256);
/// assert_eq!(e.lsb(), 1.0 / 256.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Epoch {
    bits: u32,
    slot: Time,
}

impl Epoch {
    /// Creates an epoch of `2^bits` slots with the default 9 ps slot.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::UnsupportedBits`] unless
    /// `1 <= bits <= 24`.
    pub fn from_bits(bits: u32) -> Result<Self, EncodingError> {
        Self::with_slot(bits, DEFAULT_SLOT)
    }

    /// Creates an epoch with an explicit slot width (e.g. t_BFF = 12 ps
    /// for balancer-based adders, or B·t_TFF2 for the FIR's PNM clock).
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::UnsupportedBits`] unless
    /// `1 <= bits <= 24`, or if `slot` is zero.
    pub fn with_slot(bits: u32, slot: Time) -> Result<Self, EncodingError> {
        if bits == 0 || bits > MAX_BITS || slot == Time::ZERO {
            return Err(EncodingError::UnsupportedBits { bits });
        }
        Ok(Epoch { bits, slot })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of slots, `N_max = 2^bits`.
    pub fn n_max(&self) -> u64 {
        1u64 << self.bits
    }

    /// Weight of one pulse / one slot: `1 / N_max`.
    pub fn lsb(&self) -> f64 {
        1.0 / self.n_max() as f64
    }

    /// Width of one slot.
    pub fn slot_width(&self) -> Time {
        self.slot
    }

    /// Total epoch duration, `N_max · slot`.
    pub fn duration(&self) -> Time {
        self.slot.scale(self.n_max())
    }

    /// Start time of slot `id` relative to the epoch start.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::SlotOutOfEpoch`] if `id > N_max` (the
    /// value `N_max` itself is allowed — it is the epoch end, encoding
    /// exactly 1.0).
    pub fn slot_time(&self, id: u64) -> Result<Time, EncodingError> {
        if id > self.n_max() {
            return Err(EncodingError::SlotOutOfEpoch {
                slot: id,
                n_max: self.n_max(),
            });
        }
        Ok(self.slot.scale(id))
    }

    /// Quantizes a unipolar value to the nearest slot count.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::OutOfRange`] unless `0 <= x <= 1`.
    pub fn quantize_unipolar(&self, x: f64) -> Result<u64, EncodingError> {
        if !(0.0..=1.0).contains(&x) || x.is_nan() {
            return Err(EncodingError::OutOfRange {
                value: x,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok((x * self.n_max() as f64).round() as u64)
    }

    /// Quantizes a bipolar value (`[−1, 1]`) to a slot count via the
    /// paper's mapping `p_u = (p_b + 1) / 2`.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::OutOfRange`] unless `−1 <= x <= 1`.
    pub fn quantize_bipolar(&self, x: f64) -> Result<u64, EncodingError> {
        if !(-1.0..=1.0).contains(&x) || x.is_nan() {
            return Err(EncodingError::OutOfRange {
                value: x,
                min: -1.0,
                max: 1.0,
            });
        }
        self.quantize_unipolar((x + 1.0) / 2.0)
    }

    /// The unipolar value a slot count represents.
    pub fn dequantize_unipolar(&self, count: u64) -> f64 {
        count as f64 / self.n_max() as f64
    }

    /// The bipolar value a slot count represents: `2·p_u − 1`.
    pub fn dequantize_bipolar(&self, count: u64) -> f64 {
        2.0 * self.dequantize_unipolar(count) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_bounds() {
        assert!(Epoch::from_bits(0).is_err());
        assert!(Epoch::from_bits(25).is_err());
        assert!(Epoch::with_slot(4, Time::ZERO).is_err());
        let e = Epoch::from_bits(1).unwrap();
        assert_eq!(e.n_max(), 2);
        assert_eq!(Epoch::from_bits(24).unwrap().n_max(), 1 << 24);
    }

    #[test]
    fn geometry() {
        let e = Epoch::with_slot(3, Time::from_ps(10.0)).unwrap();
        assert_eq!(e.bits(), 3);
        assert_eq!(e.n_max(), 8);
        assert_eq!(e.lsb(), 0.125);
        assert_eq!(e.slot_width(), Time::from_ps(10.0));
        assert_eq!(e.duration(), Time::from_ps(80.0));
        assert_eq!(e.slot_time(3).unwrap(), Time::from_ps(30.0));
        assert_eq!(e.slot_time(8).unwrap(), Time::from_ps(80.0));
        assert!(e.slot_time(9).is_err());
    }

    #[test]
    fn quantize_unipolar_endpoints() {
        let e = Epoch::from_bits(4).unwrap();
        assert_eq!(e.quantize_unipolar(0.0).unwrap(), 0);
        assert_eq!(e.quantize_unipolar(1.0).unwrap(), 16);
        assert_eq!(e.quantize_unipolar(0.5).unwrap(), 8);
        assert!(e.quantize_unipolar(-0.1).is_err());
        assert!(e.quantize_unipolar(1.1).is_err());
        assert!(e.quantize_unipolar(f64::NAN).is_err());
    }

    #[test]
    fn quantize_bipolar_mapping() {
        let e = Epoch::from_bits(4).unwrap();
        assert_eq!(e.quantize_bipolar(-1.0).unwrap(), 0);
        assert_eq!(e.quantize_bipolar(0.0).unwrap(), 8);
        assert_eq!(e.quantize_bipolar(1.0).unwrap(), 16);
        assert!(e.quantize_bipolar(-1.5).is_err());
        assert_eq!(e.dequantize_bipolar(8), 0.0);
        assert_eq!(e.dequantize_bipolar(0), -1.0);
    }

    #[test]
    fn paper_example_3bit() {
        // Paper Fig. 3a: number 3 in a 3-bit epoch is slot 3, value 3/8.
        let e = Epoch::from_bits(3).unwrap();
        assert_eq!(e.quantize_unipolar(0.375).unwrap(), 3);
        assert_eq!(e.dequantize_unipolar(3), 0.375);
    }

    proptest! {
        #[test]
        fn quantize_roundtrip_within_lsb(bits in 1u32..=16, x in 0.0f64..=1.0) {
            let e = Epoch::from_bits(bits).unwrap();
            let q = e.quantize_unipolar(x).unwrap();
            let back = e.dequantize_unipolar(q);
            prop_assert!((back - x).abs() <= 0.5 * e.lsb() + 1e-12);
        }

        #[test]
        fn bipolar_roundtrip_within_two_lsb(bits in 1u32..=16, x in -1.0f64..=1.0) {
            let e = Epoch::from_bits(bits).unwrap();
            let q = e.quantize_bipolar(x).unwrap();
            let back = e.dequantize_bipolar(q);
            prop_assert!((back - x).abs() <= e.lsb() + 1e-12);
        }

        #[test]
        fn quantization_is_monotone(bits in 1u32..=12, a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let e = Epoch::from_bits(bits).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(e.quantize_unipolar(lo).unwrap() <= e.quantize_unipolar(hi).unwrap());
        }
    }
}
