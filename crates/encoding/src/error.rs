//! Error type for encoding operations.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing epochs or encoding values.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EncodingError {
    /// A value fell outside the representable range of the encoding.
    OutOfRange {
        /// The offending value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// The requested resolution is outside the supported 1..=24 bits.
    UnsupportedBits {
        /// The requested bit count.
        bits: u32,
    },
    /// A slot id exceeded the epoch's slot count.
    SlotOutOfEpoch {
        /// The offending slot.
        slot: u64,
        /// Number of slots in the epoch.
        n_max: u64,
    },
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::OutOfRange { value, min, max } => {
                write!(
                    f,
                    "value {value} outside representable range [{min}, {max}]"
                )
            }
            EncodingError::UnsupportedBits { bits } => {
                write!(f, "resolution of {bits} bits outside supported 1..=24")
            }
            EncodingError::SlotOutOfEpoch { slot, n_max } => {
                write!(f, "slot {slot} outside epoch of {n_max} slots")
            }
        }
    }
}

impl Error for EncodingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            EncodingError::OutOfRange {
                value: 1.5,
                min: 0.0,
                max: 1.0
            }
            .to_string(),
            "value 1.5 outside representable range [0, 1]"
        );
        assert_eq!(
            EncodingError::UnsupportedBits { bits: 40 }.to_string(),
            "resolution of 40 bits outside supported 1..=24"
        );
        assert_eq!(
            EncodingError::SlotOutOfEpoch {
                slot: 20,
                n_max: 16
            }
            .to_string(),
            "slot 20 outside epoch of 16 slots"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<EncodingError>();
    }
}
