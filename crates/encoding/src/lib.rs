//! # usfq-encoding — the U-SFQ data representations
//!
//! The U-SFQ architecture (paper §3) computes on two *unary* encodings of
//! numbers in `[0, 1]` (unipolar) or `[−1, 1]` (bipolar), both defined
//! over a computing [`Epoch`] of `N_max = 2^B` time slots:
//!
//! * **Race logic** ([`RlValue`]): the value is *when* a single pulse
//!   arrives — slot id divided by `N_max`. Cheap for min/max/offset,
//!   expensive for arithmetic.
//! * **Pulse streams** ([`PulseStream`]): the value is *how many* pulses
//!   arrive — count divided by `N_max`, spread at a uniform rate. Cheap
//!   for multiply/accumulate.
//!
//! Bipolar variants map `x ∈ [−1, 1]` through `(x + 1) / 2`, mirroring
//! bipolar stochastic computing.
//!
//! The U-SFQ multiplier pairs one operand of each kind: the RL pulse
//! gates the stream, so the surviving pulse count encodes the product.
//!
//! ```
//! use usfq_encoding::{Epoch, PulseStream, RlValue};
//!
//! # fn main() -> Result<(), usfq_encoding::EncodingError> {
//! let epoch = Epoch::from_bits(4)?;           // 16 slots
//! let a = PulseStream::from_unipolar(0.75, epoch)?; // 12 pulses
//! let b = RlValue::from_unipolar(0.5, epoch)?;      // pulse at slot 8
//! assert_eq!(a.count(), 12);
//! assert_eq!(b.slot(), 8);
//! // Gating the stream by the RL time keeps ~half the pulses: 0.75·0.5.
//! let passed = a
//!     .schedule_from(usfq_sim::Time::ZERO)
//!     .iter()
//!     .filter(|&&t| t < b.pulse_time_from(usfq_sim::Time::ZERO))
//!     .count();
//! assert_eq!(passed, 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod epoch;
mod error;
mod rl;
mod stream;

pub use epoch::Epoch;
pub use error::EncodingError;
pub use rl::RlValue;
pub use stream::PulseStream;
