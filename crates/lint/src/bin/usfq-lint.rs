//! Lints every shipped U-SFQ structural netlist (or a named subset).
//!
//! ```text
//! usfq-lint [--format text|json|sarif] [--deny-warnings] [NETLIST...]
//! ```
//!
//! Exit codes: `0` — clean (info-only findings allowed); `1` —
//! error-severity findings (or bad usage); `2` — warning-severity
//! findings under `--deny-warnings`. `--json` is kept as an alias for
//! `--format json`.

use std::io::Write;
use std::process::ExitCode;

use usfq_core::netlists::shipped_netlists;
use usfq_lint::{lint_netlist, to_sarif, Severity};

/// Exit code for warnings rejected by `--deny-warnings`.
const EXIT_DENIED_WARNINGS: u8 = 2;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

/// Writes to stdout, exiting quietly if the reader closed the pipe
/// (`usfq-lint | head` must not panic).
fn emit(text: &str) {
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn usage() -> String {
    let mut usage = String::from(
        "usage: usfq-lint [--format text|json|sarif] [--deny-warnings] [NETLIST...]\n",
    );
    usage.push_str("\nshipped netlists:\n");
    for nl in shipped_netlists() {
        usage.push_str(&format!("  {:<24} {}\n", nl.name, nl.summary));
    }
    usage
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut deny_warnings = false;
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        eprintln!(
                            "usfq-lint: --format expects text, json, or sarif, got {}",
                            other.map_or_else(|| "nothing".into(), |o| format!("`{o}`"))
                        );
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => {
                emit(&usage());
                return ExitCode::SUCCESS;
            }
            other => names.push(other.to_string()),
        }
    }

    let catalogue = shipped_netlists();
    for name in &names {
        if !catalogue.iter().any(|nl| nl.name == name) {
            eprintln!("usfq-lint: unknown netlist `{name}` (see --help)");
            return ExitCode::FAILURE;
        }
    }

    let mut worst: Option<Severity> = None;
    let mut reports = Vec::new();
    for netlist in &catalogue {
        if !names.is_empty() && !names.iter().any(|n| n == netlist.name) {
            continue;
        }
        let report = lint_netlist(netlist);
        worst = worst.max(report.worst_severity());
        reports.push(report);
    }

    match format {
        Format::Text => {
            for report in &reports {
                emit(&report.render_text());
            }
        }
        Format::Json => {
            let parts: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
            emit(&format!("[{}]\n", parts.join(",")));
        }
        Format::Sarif => {
            emit(&to_sarif(&reports));
            emit("\n");
        }
    }

    match worst {
        Some(Severity::Error) => ExitCode::FAILURE,
        Some(Severity::Warning) if deny_warnings => ExitCode::from(EXIT_DENIED_WARNINGS),
        _ => ExitCode::SUCCESS,
    }
}
