//! Lints every shipped U-SFQ structural netlist (or a named subset),
//! optionally repairing findings to a timing-closed fixpoint.
//!
//! ```text
//! usfq-lint [--format text|json|sarif] [--deny-warnings]
//!           [--fix [--fix-iters N] [--strict-budget] [--keep-waivers]]
//!           [NETLIST...]
//! ```
//!
//! Exit codes: `0` — clean (info-only findings allowed); `1` —
//! error-severity findings, a non-converging `--fix` run, or bad
//! usage; `2` — warning-severity findings under `--deny-warnings`.
//! `--json` is kept as an alias for `--format json`.
//!
//! `--fix` repairs each netlist in memory (JTL path-balancing chains,
//! splitter trees) and re-lints to a fixpoint. Timing waivers
//! (`USFQ006`–`USFQ008`) are stripped first so acknowledged hazards are
//! actually repaired — keep them with `--keep-waivers`. When only the
//! epoch envelope stands between the repaired netlist and a clean
//! report, the envelope is extended and reported; `--strict-budget`
//! turns that into a failure instead. Netlists repair in parallel
//! (`USFQ_THREADS` controls the worker count).

use std::io::Write;
use std::process::ExitCode;

use usfq_core::netlists::shipped_netlists;
use usfq_lint::{
    fix_to_fixpoint, lint_config_for, lint_netlist, to_sarif, FixOptions, FixOutcome, LintReport,
    Severity,
};
use usfq_sim::Runner;

/// Exit code for warnings rejected by `--deny-warnings`.
const EXIT_DENIED_WARNINGS: u8 = 2;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

/// Writes to stdout, exiting quietly if the reader closed the pipe
/// (`usfq-lint | head` must not panic).
fn emit(text: &str) {
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn usage() -> String {
    let mut usage = String::from(
        "usage: usfq-lint [--format text|json|sarif] [--deny-warnings]\n\
         \x20                [--fix [--fix-iters N] [--strict-budget] [--keep-waivers]]\n\
         \x20                [NETLIST...]\n",
    );
    usage.push_str("\nshipped netlists:\n");
    for nl in shipped_netlists() {
        usage.push_str(&format!("  {:<24} {}\n", nl.name, nl.summary));
    }
    usage
}

fn render_fix_text(name: &str, outcome: &FixOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let verdict = if outcome.converged {
        "converged"
    } else {
        "DID NOT CONVERGE"
    };
    let _ = write!(
        out,
        "{name}: {verdict} after {} iteration(s), {} fix(es), +{} JJ",
        outcome.iterations,
        outcome.applied.len(),
        outcome.added_jj
    );
    if let Some(budget) = outcome.extended_budget {
        let _ = write!(out, ", epoch budget extended to {:.1} ps", budget.as_ps());
    }
    if let Some(end) = outcome.extended_epoch_end {
        let _ = write!(out, ", rl epoch end extended to {:.1} ps", end.as_ps());
    }
    out.push('\n');
    for fix in &outcome.applied {
        let _ = writeln!(out, "  applied: {}", fix.to_directive());
    }
    for d in &outcome.irreducible {
        let _ = writeln!(out, "  irreducible: {d}");
    }
    out
}

fn render_fix_json(name: &str, outcome: &FixOutcome) -> String {
    use std::fmt::Write as _;
    // Directives and netlist names contain no characters needing JSON
    // escapes beyond what the report renderer already guarantees.
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"netlist\":\"{name}\",\"converged\":{},\"iterations\":{},\
         \"added_jj\":{},\"extended_budget_ps\":",
        outcome.converged, outcome.iterations, outcome.added_jj
    );
    match outcome.extended_budget {
        Some(b) => {
            let _ = write!(out, "{:.3}", b.as_ps());
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"applied\":[");
    for (i, fix) in outcome.applied.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", fix.to_directive());
    }
    out.push_str("],\"report\":");
    out.push_str(&outcome.report.to_json());
    out.push('}');
    out
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut deny_warnings = false;
    let mut fix = false;
    let mut strict_budget = false;
    let mut keep_waivers = false;
    let mut fix_iters: Option<usize> = None;
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        eprintln!(
                            "usfq-lint: --format expects text, json, or sarif, got {}",
                            other.map_or_else(|| "nothing".into(), |o| format!("`{o}`"))
                        );
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--deny-warnings" => deny_warnings = true,
            "--fix" => fix = true,
            "--strict-budget" => strict_budget = true,
            "--keep-waivers" => keep_waivers = true,
            "--fix-iters" => {
                fix_iters = match args.next().as_deref().map(str::parse) {
                    Some(Ok(n)) if n > 0 => Some(n),
                    _ => {
                        eprintln!("usfq-lint: --fix-iters expects a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--help" | "-h" => {
                emit(&usage());
                return ExitCode::SUCCESS;
            }
            other => names.push(other.to_string()),
        }
    }
    if (strict_budget || keep_waivers || fix_iters.is_some()) && !fix {
        eprintln!("usfq-lint: --strict-budget/--keep-waivers/--fix-iters require --fix");
        return ExitCode::FAILURE;
    }

    let catalogue = shipped_netlists();
    for name in &names {
        if !catalogue.iter().any(|nl| nl.name == name) {
            eprintln!("usfq-lint: unknown netlist `{name}` (see --help)");
            return ExitCode::FAILURE;
        }
    }
    let selected: Vec<_> = catalogue
        .into_iter()
        .filter(|nl| names.is_empty() || names.iter().any(|n| n == nl.name))
        .collect();

    if fix {
        let opts = FixOptions {
            max_iterations: fix_iters.unwrap_or(FixOptions::default().max_iterations),
            allow_budget_extension: !strict_budget,
        };
        // Netlists repair independently; Runner keeps outcomes in
        // catalogue order so output and exit codes are deterministic.
        let outcomes: Vec<(String, FixOutcome)> = Runner::from_env().map(&selected, |_, nl| {
            let cfg = if keep_waivers {
                lint_config_for(nl)
            } else {
                lint_config_for(nl).without_timing_waivers()
            };
            let (_, outcome) = fix_to_fixpoint(&nl.circuit, nl.name, &cfg, &opts);
            (nl.name.to_string(), outcome)
        });

        match format {
            Format::Text => {
                for (name, outcome) in &outcomes {
                    emit(&render_fix_text(name, outcome));
                }
            }
            Format::Json => {
                let parts: Vec<String> = outcomes
                    .iter()
                    .map(|(name, o)| render_fix_json(name, o))
                    .collect();
                emit(&format!("[{}]\n", parts.join(",")));
            }
            Format::Sarif => {
                let reports: Vec<LintReport> =
                    outcomes.iter().map(|(_, o)| o.report.clone()).collect();
                emit(&to_sarif(&reports));
                emit("\n");
            }
        }
        return if outcomes.iter().all(|(_, o)| o.converged) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let mut worst: Option<Severity> = None;
    let mut reports = Vec::new();
    for netlist in &selected {
        let report = lint_netlist(netlist);
        worst = worst.max(report.worst_severity());
        reports.push(report);
    }

    match format {
        Format::Text => {
            for report in &reports {
                emit(&report.render_text());
            }
        }
        Format::Json => {
            let parts: Vec<String> = reports.iter().map(usfq_lint::LintReport::to_json).collect();
            emit(&format!("[{}]\n", parts.join(",")));
        }
        Format::Sarif => {
            emit(&to_sarif(&reports));
            emit("\n");
        }
    }

    match worst {
        Some(Severity::Error) => ExitCode::FAILURE,
        Some(Severity::Warning) if deny_warnings => ExitCode::from(EXIT_DENIED_WARNINGS),
        _ => ExitCode::SUCCESS,
    }
}
