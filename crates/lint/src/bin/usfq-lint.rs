//! Lints every shipped U-SFQ structural netlist (or a named subset).
//!
//! ```text
//! usfq-lint [--json] [NETLIST...]
//! ```
//!
//! Exits non-zero if any analyzed netlist has error-severity findings.

use std::io::Write;
use std::process::ExitCode;

use usfq_core::netlists::shipped_netlists;
use usfq_lint::lint_netlist;

/// Writes to stdout, exiting quietly if the reader closed the pipe
/// (`usfq-lint | head` must not panic).
fn emit(text: &str) {
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut names: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                let mut usage = String::from("usage: usfq-lint [--json] [NETLIST...]\n");
                usage.push_str("\nshipped netlists:\n");
                for nl in shipped_netlists() {
                    usage.push_str(&format!("  {:<24} {}\n", nl.name, nl.summary));
                }
                emit(&usage);
                return ExitCode::SUCCESS;
            }
            other => names.push(other.to_string()),
        }
    }

    let catalogue = shipped_netlists();
    for name in &names {
        if !catalogue.iter().any(|nl| nl.name == name) {
            eprintln!("usfq-lint: unknown netlist `{name}` (see --help)");
            return ExitCode::FAILURE;
        }
    }

    let mut failed = false;
    let mut json_parts = Vec::new();
    for netlist in &catalogue {
        if !names.is_empty() && !names.iter().any(|n| n == netlist.name) {
            continue;
        }
        let report = lint_netlist(netlist);
        failed |= report.has_errors();
        if json {
            json_parts.push(report.to_json());
        } else {
            emit(&report.render_text());
        }
    }
    if json {
        emit(&format!("[{}]\n", json_parts.join(",")));
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
