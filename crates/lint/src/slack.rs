//! Slack and critical-path analysis: the timing-closure layer.
//!
//! Built on the forward arrival windows of [`crate::timing`], this pass
//! adds the classic static-timing other half: a backward
//! *required-time* propagation from every probe endpoint (seeded with
//! the epoch budget) through wire and worst-case cell delays, giving
//! each component a **slack** — how much later it could emit before
//! some downstream probe misses the budget. Slack is signed: negative
//! slack means the budget is already blown through that component.
//!
//! Two diagnostics come out of it:
//!
//! * `USFQ017` (info) — for the K worst-slack probe endpoints, the
//!   critical path: the argmax-arrival predecessor chain from the
//!   endpoint back to an external input. This is the report a designer
//!   reads to decide where to spend area.
//! * `USFQ018` (warning) — a repair suggested by the hazard checks
//!   needs more padding than its component has downstream slack, so
//!   applying it will stretch the epoch. Emitted only for repairs whose
//!   parent finding is not waived: acknowledged hazards are not going
//!   to be repaired, so their area/latency bill is not owed.
//!
//! Endpoint extraction is embarrassingly parallel (each probe walks its
//! own predecessor chain over shared read-only state), so fabrics with
//! many probes fan out over [`Runner`] threads.

use std::collections::HashSet;

use usfq_cells::catalog::t_jtl;
use usfq_sim::graph::{CircuitGraph as Graph, Driver};
use usfq_sim::{ProbeSource, Runner, Time};

use crate::diag::{Code, Diagnostic};
use crate::fix::Fix;
use crate::timing::TimingResult;
use crate::LintConfig;

/// Probe count at and beyond which endpoint extraction fans out over
/// [`Runner`] threads; below it the sequential loop wins.
const PARALLEL_PROBE_THRESHOLD: usize = 64;

/// How many worst-slack endpoints get a `USFQ017` critical-path report.
const REPORTED_ENDPOINTS: usize = 4;

/// Slack at one probe endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointSlack {
    /// The probe name.
    pub probe: String,
    /// Worst-case (latest) static arrival at the probe. `None` when the
    /// endpoint sits on or downstream of a feedback loop, or can never
    /// fire.
    pub arrival: Option<Time>,
    /// The required arrival: the epoch budget.
    pub required: Time,
    /// `required − arrival` in femtoseconds; negative when the budget
    /// is blown. `None` whenever `arrival` is.
    pub slack_fs: Option<i64>,
    /// The critical path, input first: the argmax-arrival predecessor
    /// chain (`in:<name>` marks the external input). Endpoints without
    /// a bounded arrival report just their own component.
    pub path: Vec<String>,
}

/// Everything the slack pass derived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlackReport {
    /// Per-probe slack, in probe order.
    pub endpoints: Vec<EndpointSlack>,
    /// The minimum endpoint slack, when any endpoint has one.
    pub worst_slack_fs: Option<i64>,
}

impl SlackReport {
    /// Endpoint indices from worst slack to best (endpoints without a
    /// slack excluded), ties broken by probe name.
    pub fn ranked(&self) -> Vec<usize> {
        let mut ranked: Vec<usize> = (0..self.endpoints.len())
            .filter(|&i| self.endpoints[i].slack_fs.is_some())
            .collect();
        ranked.sort_by(|&x, &y| {
            self.endpoints[x]
                .slack_fs
                .cmp(&self.endpoints[y].slack_fs)
                .then(self.endpoints[x].probe.cmp(&self.endpoints[y].probe))
        });
        ranked
    }
}

/// Runs the pass and appends `USFQ017`/`USFQ018` findings.
pub(crate) fn analyze(
    g: &Graph,
    timing: &TimingResult,
    cfg: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) -> SlackReport {
    let Some(budget) = cfg.epoch_budget else {
        // No budget, no required times: slack is undefined everywhere.
        return SlackReport {
            endpoints: Vec::new(),
            worst_slack_fs: None,
        };
    };
    let budget_fs = budget.as_fs() as i64;
    let input_window = cfg.input_window;

    let compute = |_: usize, probe: &(String, ProbeSource)| -> EndpointSlack {
        let (name, source) = probe;
        match *source {
            ProbeSource::Input(input) => EndpointSlack {
                probe: name.clone(),
                arrival: Some(input_window),
                required: budget,
                slack_fs: Some(budget_fs - input_window.as_fs() as i64),
                path: vec![format!("in:{}", g.input_names[input.index()])],
            },
            ProbeSource::Output(comp, _) => {
                let c = comp.index();
                let window = if timing.skipped[c] {
                    None
                } else {
                    timing.out_windows[c]
                };
                match window {
                    Some(w) => EndpointSlack {
                        probe: name.clone(),
                        arrival: Some(w.max),
                        required: budget,
                        slack_fs: Some(budget_fs - w.max.as_fs() as i64),
                        path: trace_path(g, timing, input_window, c),
                    },
                    None => EndpointSlack {
                        probe: name.clone(),
                        arrival: None,
                        required: budget,
                        slack_fs: None,
                        path: vec![g.names[c].clone()],
                    },
                }
            }
        }
    };
    let endpoints: Vec<EndpointSlack> = if g.probes.len() >= PARALLEL_PROBE_THRESHOLD {
        Runner::from_env().map(&g.probes, compute)
    } else {
        g.probes.iter().map(|p| compute(0, p)).collect()
    };

    let report = SlackReport {
        worst_slack_fs: endpoints.iter().filter_map(|e| e.slack_fs).min(),
        endpoints,
    };

    for &i in report.ranked().iter().take(REPORTED_ENDPOINTS) {
        let e = &report.endpoints[i];
        let (Some(arrival), Some(slack)) = (e.arrival, e.slack_fs) else {
            continue;
        };
        diags.push(Diagnostic::new(
            Code::CriticalPath,
            Some(e.probe.clone()),
            format!(
                "worst-case arrival {:.1} ps against the {:.1} ps epoch \
                 budget leaves {:+.1} ps of slack; critical path: {}",
                arrival.as_ps(),
                e.required.as_ps(),
                slack as f64 / 1000.0,
                render_path(&e.path)
            ),
        ));
    }

    check_slack_deficits(g, timing, cfg, budget_fs, diags);
    report
}

/// Backward required-time propagation plus the `USFQ018` check: for
/// every suggested (unwaived) padding repair, compare its delay bill
/// against the component's downstream slack.
fn check_slack_deficits(
    g: &Graph,
    timing: &TimingResult,
    cfg: &LintConfig,
    budget_fs: i64,
    diags: &mut Vec<Diagnostic>,
) {
    // required[c]: latest allowed emission (fs) keeping every
    // downstream probe inside the budget. Seed at probed components,
    // then walk the covered region in reverse topological order — every
    // successor of `c` is processed before `c`, so its contribution has
    // already landed.
    let mut required: Vec<Option<i64>> = vec![None; g.len()];
    for (_, source) in &g.probes {
        if let ProbeSource::Output(comp, _) = source {
            let c = comp.index();
            if !timing.skipped[c] {
                required[c] = Some(required[c].map_or(budget_fs, |r| r.min(budget_fs)));
            }
        }
    }
    for &c in timing.order.iter().rev() {
        let Some(r) = required[c] else { continue };
        let lat = g.meta[c].max_delay.as_fs() as i64;
        for drvs in &g.drivers[c] {
            for d in drvs {
                if let Driver::Comp(src, _, delay) = *d {
                    let cand = r - lat - delay.as_fs() as i64;
                    required[src] = Some(required[src].map_or(cand, |cur| cur.min(cand)));
                }
            }
        }
    }

    let index_of: std::collections::HashMap<&str, usize> = g
        .names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let t_stage = t_jtl().as_fs() as i64;
    let mut seen: HashSet<(String, usize)> = HashSet::new();
    let mut deficits = Vec::new();
    for d in diags.iter() {
        let Some(Fix::InsertJtls {
            component,
            port,
            count,
        }) = &d.fix
        else {
            continue;
        };
        // An acknowledged (waived) hazard is not going to be repaired:
        // its padding bill is not owed, so no deficit to report.
        if crate::waiver_matches(&cfg.waivers, d.code, Some(component)) {
            continue;
        }
        if !seen.insert((component.clone(), *port)) {
            continue;
        }
        let Some(&c) = index_of.get(component.as_str()) else {
            continue;
        };
        let slack = match (required[c], timing.out_windows[c]) {
            (Some(r), Some(w)) => r - w.max.as_fs() as i64,
            _ => continue,
        };
        let pad = i64::from(*count) * t_stage;
        if pad > slack {
            deficits.push(Diagnostic::new(
                Code::SlackDeficit,
                Some(component.clone()),
                format!(
                    "repairing input port {port} needs {:.1} ps of padding \
                     but `{component}` has only {:.1} ps of downstream \
                     slack; applying it stretches the epoch budget",
                    pad as f64 / 1000.0,
                    slack as f64 / 1000.0
                ),
            ));
        }
    }
    diags.extend(deficits);
}

/// The argmax-arrival predecessor chain from `endpoint` back to an
/// external input, rendered input-first.
fn trace_path(
    g: &Graph,
    timing: &TimingResult,
    input_window: Time,
    endpoint: usize,
) -> Vec<String> {
    enum Src {
        Input(usize),
        Comp(usize),
    }
    let mut path = vec![g.names[endpoint].clone()];
    let mut cur = endpoint;
    // The covered region is acyclic, so the chain is bounded by the
    // component count; the loop bound is a defensive backstop.
    for _ in 0..=g.len() {
        let mut best: Option<(Time, Src)> = None;
        for drvs in &g.drivers[cur] {
            for d in drvs {
                let cand = match *d {
                    Driver::Input(i, delay) => Some((input_window + delay, Src::Input(i))),
                    Driver::Comp(src, _, delay) => {
                        timing.out_windows[src].map(|w| (w.max + delay, Src::Comp(src)))
                    }
                };
                if let Some((t, s)) = cand {
                    // Strict `>` keeps the first-seen maximum: ties
                    // resolve by port then wire order, deterministically.
                    if best.as_ref().map_or(true, |b| t > b.0) {
                        best = Some((t, s));
                    }
                }
            }
        }
        match best {
            Some((_, Src::Comp(src))) => {
                path.push(g.names[src].clone());
                cur = src;
            }
            Some((_, Src::Input(i))) => {
                path.push(format!("in:{}", g.input_names[i]));
                break;
            }
            None => break,
        }
    }
    path.reverse();
    path
}

/// Joins a path with `->`, eliding the middle of very long chains so
/// fabric-scale reports stay readable.
fn render_path(path: &[String]) -> String {
    const HEAD: usize = 6;
    const TAIL: usize = 5;
    if path.len() <= HEAD + TAIL + 1 {
        path.join(" -> ")
    } else {
        format!(
            "{} -> ... ({} cells omitted) ... -> {}",
            path[..HEAD].join(" -> "),
            path.len() - HEAD - TAIL,
            path[path.len() - TAIL..].join(" -> ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint, slack_report};
    use usfq_cells::interconnect::Merger;
    use usfq_sim::component::Buffer;
    use usfq_sim::Circuit;

    fn chain() -> (Circuit, LintConfig) {
        let mut c = Circuit::new();
        let x = c.input("x");
        let b1 = c.add(Buffer::new("b1", Time::from_ps(3.0)));
        let b2 = c.add(Buffer::new("b2", Time::from_ps(5.0)));
        c.connect_input(x, b1.input(0), Time::from_ps(2.0)).unwrap();
        c.connect(b1.output(0), b2.input(0), Time::from_ps(1.0))
            .unwrap();
        c.probe(b2.output(0), "end");
        let cfg = LintConfig {
            input_window: Time::from_ps(10.0),
            epoch_budget: Some(Time::from_ps(100.0)),
            ..LintConfig::default()
        };
        (c, cfg)
    }

    #[test]
    fn endpoint_slack_and_path_are_exact() {
        let (c, cfg) = chain();
        let report = slack_report(&c, &cfg);
        assert_eq!(report.endpoints.len(), 1);
        let e = &report.endpoints[0];
        // Arrival: 10 (window) + 2 + 3 + 1 + 5 = 21 ps.
        assert_eq!(e.arrival, Some(Time::from_ps(21.0)));
        assert_eq!(e.slack_fs, Some((Time::from_ps(79.0)).as_fs() as i64));
        assert_eq!(report.worst_slack_fs, e.slack_fs);
        assert_eq!(e.path, vec!["in:x", "b1", "b2"]);
    }

    #[test]
    fn negative_slack_is_signed() {
        let (c, mut cfg) = chain();
        cfg.epoch_budget = Some(Time::from_ps(15.0));
        let report = slack_report(&c, &cfg);
        assert_eq!(
            report.endpoints[0].slack_fs,
            Some(-(Time::from_ps(6.0).as_fs() as i64))
        );
    }

    #[test]
    fn critical_path_diags_are_emitted() {
        let (c, cfg) = chain();
        let report = lint(&c, "chain", &cfg);
        assert_eq!(report.count(Code::CriticalPath), 1);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::CriticalPath)
            .unwrap();
        assert_eq!(d.component.as_deref(), Some("end"));
        assert!(d.message.contains("+79.0 ps of slack"), "{}", d.message);
        assert!(d.message.contains("in:x -> b1 -> b2"), "{}", d.message);
    }

    fn tight_merger() -> (Circuit, LintConfig) {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let m = c.add(Merger::new("m"));
        c.connect_input(a, m.input(Merger::IN_A), Time::ZERO)
            .unwrap();
        c.connect_input(b, m.input(Merger::IN_B), Time::ZERO)
            .unwrap();
        c.probe(m.output(Merger::OUT), "out");
        let cfg = LintConfig {
            input_window: Time::from_ps(20.0),
            // Just enough for the unrepaired netlist: padding a port to
            // clear the collision window cannot fit.
            epoch_budget: Some(Time::from_ps(30.0)),
            ..LintConfig::default()
        };
        (c, cfg)
    }

    #[test]
    fn slack_deficit_fires_when_padding_exceeds_slack() {
        let (c, cfg) = tight_merger();
        let report = lint(&c, "tight", &cfg);
        assert!(report.has(Code::MergerCollision));
        assert_eq!(report.count(Code::SlackDeficit), 1);
    }

    #[test]
    fn slack_deficit_respects_waivers() {
        let (c, mut cfg) = tight_merger();
        cfg.waivers.push(("USFQ006".into(), "m".into()));
        let report = lint(&c, "tight", &cfg);
        assert!(report.has(Code::MergerCollision));
        assert!(!report.has(Code::SlackDeficit));
    }

    #[test]
    fn long_paths_elide_the_middle() {
        let path: Vec<String> = (0..30).map(|i| format!("c{i}")).collect();
        let rendered = render_path(&path);
        assert!(rendered.contains("(19 cells omitted)"));
        assert!(rendered.starts_with("c0 -> "));
        assert!(rendered.ends_with(" -> c29"));
    }
}
