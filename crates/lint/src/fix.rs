//! Machine-applicable repairs and the `--fix` fixpoint engine.
//!
//! Every timing or structural finding that has a mechanical remedy
//! carries a [`Fix`]: a structured description of a netlist edit
//! (`insert n path-balancing JTLs on the wires into this port`,
//! `rebuild this net as a splitter tree`). Fixes render as a one-line
//! *directive* with a stable grammar, travel through SARIF as
//! `fixes[].artifactChanges[].replacements[].insertedContent`, and are
//! applied to an in-memory [`Circuit`] by the mutation primitives in
//! [`usfq_core::repair`].
//!
//! [`fix_to_fixpoint`] drives repair to closure: lint, apply every
//! actionable fix, re-extract, re-lint, repeat until no fix remains or
//! the iteration bound trips. Repairs only ever move arrival windows
//! *later* (padding) or reduce fan-out (splitting), so the loop is
//! monotone; each hazard pair needs at most one padding round, and the
//! bound guards pathological multiway interactions.
//!
//! Delay balancing lengthens the critical path, so a repaired netlist
//! can honestly need a longer epoch than the envelope it was authored
//! for. With [`FixOptions::allow_budget_extension`] (the default), once
//! every fixable finding is resolved and only budget/epoch-end findings
//! remain, the engine recomputes the minimal envelope the repaired
//! netlist needs, re-lints under it, and reports the extension — that
//! is the timing-closure contract, the paper's area/delay trade made
//! explicit. `--strict-budget` disables it, leaving those findings in
//! the irreducible core.

use usfq_core::repair::{insert_jtl_chain, split_fanout, NetSource};
use usfq_sim::{Circuit, SimError, Time, WireId};

use crate::diag::{Code, Diagnostic, LintReport, Severity};
use crate::{lint, LintConfig};

/// The net a [`Fix::SplitterTree`] repair rebuilds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FixSource {
    /// An external input's net, by input name.
    Input {
        /// The external input name.
        name: String,
    },
    /// One component output port's net.
    Output {
        /// The driving component name.
        component: String,
        /// The driving output port.
        port: usize,
    },
}

/// One machine-applicable repair. Serialized as a single-line directive
/// (see [`Fix::to_directive`]); component and input names containing
/// whitespace are not representable in the grammar.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Fix {
    /// Splice `count` catalog JTLs into every wire feeding input
    /// `port` of `component`, delaying its arrival window by
    /// `count × t_jtl` to clear a hazard window.
    InsertJtls {
        /// The component whose input port is padded.
        component: String,
        /// The padded input port.
        port: usize,
        /// Number of JTL stages per wire.
        count: u32,
    },
    /// Rebuild an over-driven net as a binary splitter tree so every
    /// physical output drives exactly one sink.
    SplitterTree {
        /// The over-driven net.
        source: FixSource,
    },
}

impl Fix {
    /// The canonical one-line directive, e.g.
    /// `insert-jtls at=acc#1 count=3` or `splitter-tree src=in:clk`.
    pub fn to_directive(&self) -> String {
        match self {
            Fix::InsertJtls {
                component,
                port,
                count,
            } => format!("insert-jtls at={component}#{port} count={count}"),
            Fix::SplitterTree {
                source: FixSource::Input { name },
            } => format!("splitter-tree src=in:{name}"),
            Fix::SplitterTree {
                source: FixSource::Output { component, port },
            } => format!("splitter-tree src=out:{component}#{port}"),
        }
    }

    /// Parses a directive produced by [`Fix::to_directive`]. Key order
    /// is fixed; `None` on any deviation from the grammar.
    pub fn parse_directive(s: &str) -> Option<Fix> {
        let mut tokens = s.split_whitespace();
        match tokens.next()? {
            "insert-jtls" => {
                let at = tokens.next()?.strip_prefix("at=")?;
                let (component, port) = at.rsplit_once('#')?;
                let port = port.parse().ok()?;
                let count = tokens.next()?.strip_prefix("count=")?.parse().ok()?;
                if tokens.next().is_some() || component.is_empty() {
                    return None;
                }
                Some(Fix::InsertJtls {
                    component: component.to_string(),
                    port,
                    count,
                })
            }
            "splitter-tree" => {
                let src = tokens.next()?.strip_prefix("src=")?;
                if tokens.next().is_some() {
                    return None;
                }
                let source = if let Some(name) = src.strip_prefix("in:") {
                    if name.is_empty() {
                        return None;
                    }
                    FixSource::Input {
                        name: name.to_string(),
                    }
                } else {
                    let (component, port) = src.strip_prefix("out:")?.rsplit_once('#')?;
                    if component.is_empty() {
                        return None;
                    }
                    FixSource::Output {
                        component: component.to_string(),
                        port: port.parse().ok()?,
                    }
                };
                Some(Fix::SplitterTree { source })
            }
            _ => None,
        }
    }

    /// Human-readable description (SARIF fix `description.text`).
    pub fn describe(&self) -> String {
        match self {
            Fix::InsertJtls {
                component,
                port,
                count,
            } => format!(
                "insert {count} path-balancing JTL stage(s) on every wire \
                 into input port {port} of `{component}`"
            ),
            Fix::SplitterTree {
                source: FixSource::Input { name },
            } => format!("rebuild the net of external input `{name}` as a splitter tree"),
            Fix::SplitterTree {
                source: FixSource::Output { component, port },
            } => format!(
                "rebuild the net of output {port} of `{component}` as a \
                 splitter tree"
            ),
        }
    }

    /// Applies the repair to `circuit`. Inserted cells are named
    /// `fx<n>_...` where `n` is the component count at insertion time,
    /// so repeated applications stay deterministic and collision-free.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownId`] when the named component or input does
    /// not exist in `circuit`.
    pub fn apply(&self, circuit: &mut Circuit) -> Result<(), SimError> {
        match self {
            Fix::InsertJtls {
                component,
                port,
                count,
            } => {
                let comp = circuit
                    .find_component(component)
                    .ok_or_else(|| SimError::UnknownId(format!("component `{component}`")))?;
                let mut wires = circuit.wires_into(comp, *port);
                // Splicing removes one wire from its source net and
                // appends the replacement at the end, so handles with a
                // smaller position stay valid: process descending.
                wires.sort_by_key(|w| match *w {
                    WireId::FromInput { nth, .. } | WireId::FromComp { nth, .. } => {
                        std::cmp::Reverse(nth)
                    }
                });
                for wire in wires {
                    let prefix = format!("fx{}", circuit.num_components());
                    insert_jtl_chain(circuit, wire, *count, &prefix)?;
                }
                Ok(())
            }
            Fix::SplitterTree { source } => {
                let src = match source {
                    FixSource::Input { name } => NetSource::Input(
                        circuit
                            .find_input(name)
                            .ok_or_else(|| SimError::UnknownId(format!("input `{name}`")))?,
                    ),
                    FixSource::Output { component, port } => NetSource::Output(
                        circuit.find_component(component).ok_or_else(|| {
                            SimError::UnknownId(format!("component `{component}`"))
                        })?,
                        *port,
                    ),
                };
                let prefix = format!("fx{}", circuit.num_components());
                split_fanout(circuit, src, &prefix)?;
                Ok(())
            }
        }
    }
}

/// Extracts every fix directive from a SARIF log produced by
/// [`crate::to_sarif`], in document order. The scan is textual — it
/// looks for the `insertedContent` text of each SARIF `fix` — so it
/// round-trips the analyzer's own output without a JSON parser
/// dependency; malformed entries are skipped.
pub fn fixes_from_sarif(sarif: &str) -> Vec<Fix> {
    const NEEDLE: &str = "\"insertedContent\":{\"text\":\"";
    let mut fixes = Vec::new();
    let mut rest = sarif;
    while let Some(pos) = rest.find(NEEDLE) {
        rest = &rest[pos + NEEDLE.len()..];
        let mut text = String::new();
        let mut chars = rest.char_indices();
        let mut consumed = rest.len();
        while let Some((i, ch)) = chars.next() {
            match ch {
                '"' => {
                    consumed = i;
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => text.push('\n'),
                    Some((_, 'r')) => text.push('\r'),
                    Some((_, 't')) => text.push('\t'),
                    Some((_, c)) => text.push(c),
                    None => break,
                },
                c => text.push(c),
            }
        }
        if let Some(fix) = Fix::parse_directive(&text) {
            fixes.push(fix);
        }
        rest = &rest[consumed..];
    }
    fixes
}

/// Knobs for [`fix_to_fixpoint`].
#[derive(Debug, Clone)]
pub struct FixOptions {
    /// Upper bound on lint→apply→re-lint rounds.
    pub max_iterations: usize,
    /// Once fixable findings are exhausted, extend the epoch budget
    /// (and race-logic epoch end) to what the repaired netlist needs
    /// instead of leaving `USFQ008`/`USFQ015` in the irreducible core.
    pub allow_budget_extension: bool,
}

impl Default for FixOptions {
    fn default() -> Self {
        FixOptions {
            max_iterations: 32,
            allow_budget_extension: true,
        }
    }
}

/// What [`fix_to_fixpoint`] did and where it landed.
#[derive(Debug, Clone)]
pub struct FixOutcome {
    /// Repair rounds executed (0 when the netlist was already clean).
    pub iterations: usize,
    /// True when the final report carries no finding above `Info`.
    pub converged: bool,
    /// Every fix applied, in application order.
    pub applied: Vec<Fix>,
    /// Josephson junctions added by the repairs (the area cost).
    pub added_jj: u64,
    /// The extended epoch budget, when budget extension fired.
    pub extended_budget: Option<Time>,
    /// The extended race-logic epoch end, when extension fired.
    pub extended_epoch_end: Option<Time>,
    /// The final lint report of the repaired netlist (under the
    /// possibly-extended envelope).
    pub report: LintReport,
    /// Findings above `Info` that no repair can discharge — empty iff
    /// `converged`.
    pub irreducible: Vec<Diagnostic>,
}

/// The fixes worth applying from one report: attached to findings still
/// above `Info` (waived findings keep their fix for display but are
/// acknowledged, so they are not acted on), deduplicated — port
/// paddings merge to the maximum requested count, splitter rebuilds to
/// one per net — in report order.
pub fn actionable_fixes(report: &LintReport) -> Vec<Fix> {
    let mut out: Vec<Fix> = Vec::new();
    for d in &report.diagnostics {
        if d.severity <= Severity::Info {
            continue;
        }
        let Some(fix) = &d.fix else { continue };
        match fix {
            Fix::InsertJtls {
                component,
                port,
                count,
            } => {
                let mut merged = false;
                for existing in &mut out {
                    if let Fix::InsertJtls {
                        component: ec,
                        port: ep,
                        count: ecount,
                    } = existing
                    {
                        if ec == component && ep == port {
                            *ecount = (*ecount).max(*count);
                            merged = true;
                            break;
                        }
                    }
                }
                if !merged {
                    out.push(fix.clone());
                }
            }
            Fix::SplitterTree { .. } => {
                if !out.contains(fix) {
                    out.push(fix.clone());
                }
            }
        }
    }
    out
}

/// Codes a budget extension can legitimately discharge: they assert the
/// *envelope* is too tight, not that the netlist is structurally wrong.
fn budget_extendable(code: Code) -> bool {
    matches!(
        code,
        Code::BudgetExceeded | Code::RacePastEpoch | Code::SlackDeficit
    )
}

/// Repairs `circuit` to a lint fixpoint under `config`.
///
/// Returns the repaired circuit and the outcome. The input circuit is
/// not modified. Application is infallible by construction — every fix
/// names a component from a fresh lint of the very circuit it is
/// applied to.
pub fn fix_to_fixpoint(
    circuit: &Circuit,
    name: &str,
    config: &LintConfig,
    opts: &FixOptions,
) -> (Circuit, FixOutcome) {
    let mut fixed = circuit.clone();
    let base_jj = fixed.total_jj();
    let mut cfg = config.clone();
    let mut applied = Vec::new();
    let mut iterations = 0;
    let mut report = lint(&fixed, name, &cfg);

    loop {
        let fixes = actionable_fixes(&report);
        if fixes.is_empty() || iterations >= opts.max_iterations {
            break;
        }
        iterations += 1;
        for fix in &fixes {
            fix.apply(&mut fixed)
                .expect("fix from a fresh lint of this circuit must apply");
        }
        applied.extend(fixes);
        report = lint(&fixed, name, &cfg);
    }

    // Timing closure: delay balancing can honestly outgrow the authored
    // envelope. When that is all that remains, extend it and re-lint.
    let mut extended_budget = None;
    let mut extended_epoch_end = None;
    if opts.allow_budget_extension {
        let remaining: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity > Severity::Info)
            .collect();
        let only_envelope =
            !remaining.is_empty() && remaining.iter().all(|d| budget_extendable(d.code));
        if only_envelope {
            let (g, timing) = crate::timing_parts(&fixed, &cfg);
            if remaining.iter().any(|d| d.code == Code::BudgetExceeded)
                || remaining.iter().any(|d| d.code == Code::SlackDeficit)
            {
                if let Some(needed) = timing.max_probe_arrival() {
                    if cfg.epoch_budget.map_or(true, |b| needed > b) {
                        cfg.epoch_budget = Some(needed);
                        extended_budget = Some(needed);
                    }
                }
            }
            if remaining.iter().any(|d| d.code == Code::RacePastEpoch) {
                if let Some(needed) = crate::domain::required_race_epoch_end(&g, &timing) {
                    if cfg.rl_epoch_end.is_some_and(|e| needed > e) {
                        cfg.rl_epoch_end = Some(needed);
                        extended_epoch_end = Some(needed);
                    }
                }
            }
            if extended_budget.is_some() || extended_epoch_end.is_some() {
                report = lint(&fixed, name, &cfg);
            }
        }
    }

    let irreducible: Vec<Diagnostic> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity > Severity::Info)
        .cloned()
        .collect();
    let outcome = FixOutcome {
        iterations,
        converged: irreducible.is_empty(),
        applied,
        added_jj: fixed.total_jj() - base_jj,
        extended_budget,
        extended_epoch_end,
        report,
        irreducible,
    };
    (fixed, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usfq_cells::interconnect::Merger;
    use usfq_sim::component::Buffer;

    #[test]
    fn directives_round_trip() {
        let fixes = [
            Fix::InsertJtls {
                component: "acc".into(),
                port: 1,
                count: 3,
            },
            Fix::SplitterTree {
                source: FixSource::Input { name: "clk".into() },
            },
            Fix::SplitterTree {
                source: FixSource::Output {
                    component: "bal#2".into(),
                    port: 0,
                },
            },
        ];
        for fix in &fixes {
            let directive = fix.to_directive();
            assert_eq!(
                Fix::parse_directive(&directive).as_ref(),
                Some(fix),
                "{directive}"
            );
            assert!(!fix.describe().is_empty());
        }
    }

    #[test]
    fn malformed_directives_are_rejected() {
        for bad in [
            "",
            "insert-jtls",
            "insert-jtls at=acc count=3",
            "insert-jtls at=acc#x count=3",
            "insert-jtls at=#1 count=3",
            "insert-jtls at=acc#1 count=3 extra=1",
            "splitter-tree src=mid:x",
            "splitter-tree src=out:acc",
            "remove-component at=acc#1",
        ] {
            assert_eq!(Fix::parse_directive(bad), None, "accepted: {bad}");
        }
    }

    #[test]
    fn actionable_fixes_dedupe_and_skip_waived() {
        let mk = |count| {
            Diagnostic::new(Code::SetupRace, Some("m".into()), "race").with_fix(Fix::InsertJtls {
                component: "m".into(),
                port: 1,
                count,
            })
        };
        let mut waived = mk(9);
        waived.waive();
        let report = LintReport::new("t", vec![mk(2), mk(5), waived]);
        assert_eq!(
            actionable_fixes(&report),
            vec![Fix::InsertJtls {
                component: "m".into(),
                port: 1,
                count: 5,
            }]
        );
    }

    /// Two inputs into a merger: both windows are `[0, W]`, a certain
    /// collision finding. One padding round must clear it.
    #[test]
    fn fixpoint_clears_a_merger_collision() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let m = c.add(Merger::new("m"));
        c.connect_input(a, m.input(Merger::IN_A), Time::ZERO)
            .unwrap();
        c.connect_input(b, m.input(Merger::IN_B), Time::ZERO)
            .unwrap();
        c.probe(m.output(Merger::OUT), "out");
        let cfg = LintConfig {
            input_window: Time::from_ps(20.0),
            ..LintConfig::default()
        };
        let before = lint(&c, "collide", &cfg);
        assert!(before.has(Code::MergerCollision));
        assert!(before
            .diagnostics
            .iter()
            .any(|d| matches!(d.fix, Some(Fix::InsertJtls { .. }))));

        let (fixed, outcome) = fix_to_fixpoint(&c, "collide", &cfg, &FixOptions::default());
        assert!(outcome.converged, "{:?}", outcome.irreducible);
        assert_eq!(outcome.iterations, 1);
        assert!(!outcome.report.has(Code::MergerCollision));
        assert!(outcome.added_jj > 0);
        assert!(fixed.num_components() > c.num_components());
        // The input circuit is untouched.
        assert_eq!(c.num_components(), 1);
    }

    #[test]
    fn fixpoint_splits_an_overdriven_net() {
        let mut c = Circuit::new();
        let x = c.input("x");
        for i in 0..3 {
            let b = c.add(Buffer::new(format!("b{i}"), Time::from_ps(1.0)));
            c.connect_input(x, b.input(0), Time::ZERO).unwrap();
            c.probe(b.output(0), format!("p{i}"));
        }
        let cfg = LintConfig::default();
        let before = lint(&c, "fanout", &cfg);
        assert!(before.has(Code::FanoutViolation));

        let (fixed, outcome) = fix_to_fixpoint(&c, "fanout", &cfg, &FixOptions::default());
        assert!(outcome.converged, "{:?}", outcome.irreducible);
        assert!(!outcome.report.has(Code::FanoutViolation));
        assert!(outcome
            .applied
            .iter()
            .any(|f| matches!(f, Fix::SplitterTree { .. })));
        assert!(fixed.fanout_overflows().is_empty());
    }

    #[test]
    fn sarif_round_trips_fixes() {
        let report = LintReport::new(
            "demo",
            vec![
                Diagnostic::new(Code::SetupRace, Some("acc".into()), "race").with_fix(
                    Fix::InsertJtls {
                        component: "acc".into(),
                        port: 1,
                        count: 4,
                    },
                ),
                Diagnostic::new(Code::FanoutViolation, Some("clk".into()), "fanout").with_fix(
                    Fix::SplitterTree {
                        source: FixSource::Input { name: "clk".into() },
                    },
                ),
            ],
        );
        let sarif = crate::to_sarif(std::slice::from_ref(&report));
        let fixes = fixes_from_sarif(&sarif);
        assert_eq!(fixes.len(), 2);
        assert!(fixes.contains(&Fix::InsertJtls {
            component: "acc".into(),
            port: 1,
            count: 4,
        }));
        assert!(fixes.contains(&Fix::SplitterTree {
            source: FixSource::Input { name: "clk".into() },
        }));
    }
}
