//! Structural checks: fanout legality, connectivity, reachability,
//! cycle detection, and JJ accounting.

use usfq_cells::catalog::jj_for_kind;
use usfq_sim::graph::CircuitGraph as Graph;
use usfq_sim::{Circuit, ProbeSource};

use crate::diag::{Code, Diagnostic};
use crate::fix::{Fix, FixSource};

/// USFQ001 — every output net (component output or external input) must
/// drive at most one sink; physical fan-out needs explicit splitters.
pub(crate) fn fanout(circuit: &Circuit, diags: &mut Vec<Diagnostic>) {
    for overflow in circuit.fanout_overflows() {
        let (what, source) = if overflow.comp.is_some() {
            (
                format!("output {} of the component", overflow.port),
                FixSource::Output {
                    component: overflow.name.clone(),
                    port: overflow.port,
                },
            )
        } else {
            (
                "the external input".to_string(),
                FixSource::Input {
                    name: overflow.name.clone(),
                },
            )
        };
        diags.push(
            Diagnostic::new(
                Code::FanoutViolation,
                Some(overflow.name.clone()),
                format!(
                    "{what} drives {} sinks; a physical SFQ output drives exactly \
                     one — insert a splitter tree",
                    overflow.sinks
                ),
            )
            .with_fix(Fix::SplitterTree { source }),
        );
    }
}

/// USFQ002 — input ports with no driver. Warning: some cells are
/// legitimately part-wired (e.g. an NDRO set once at init time), but a
/// floating port usually means a forgotten `connect`.
pub(crate) fn unconnected_inputs(g: &Graph, diags: &mut Vec<Diagnostic>) {
    for (c, ports) in g.drivers.iter().enumerate() {
        for (port, drv) in ports.iter().enumerate() {
            if drv.is_empty() {
                diags.push(Diagnostic::new(
                    Code::UnconnectedInput,
                    Some(g.names[c].clone()),
                    format!(
                        "input port {port} of this {} has no driver; it can \
                         never receive a pulse",
                        g.meta[c].kind
                    ),
                ));
            }
        }
    }
}

/// USFQ003 / USFQ004 — components (and the probes tapping them) that no
/// external input can ever pulse.
pub(crate) fn reachability(g: &Graph, diags: &mut Vec<Diagnostic>) {
    let reachable = g.reachable_from_inputs();
    for (c, &ok) in reachable.iter().enumerate() {
        if !ok {
            diags.push(Diagnostic::new(
                Code::UnreachableComponent,
                Some(g.names[c].clone()),
                "no path from any external input reaches this component; it \
                 is dead logic"
                    .to_string(),
            ));
        }
    }
    for (name, source) in &g.probes {
        if let ProbeSource::Output(comp, port) = source {
            if !reachable[comp.index()] {
                diags.push(Diagnostic::new(
                    Code::DanglingProbe,
                    Some(name.clone()),
                    format!(
                        "probe taps output {port} of unreachable component \
                         `{}`; it will never record a pulse",
                        g.names[comp.index()]
                    ),
                ));
            }
        }
    }
}

/// USFQ009 — a component whose declared kind has a catalog entry must
/// carry exactly the catalog JJ count, or area accounting drifts.
pub(crate) fn jj_accounting(g: &Graph, diags: &mut Vec<Diagnostic>) {
    for c in 0..g.len() {
        if let Some(expected) = jj_for_kind(g.meta[c].kind) {
            if g.jj[c] != expected {
                diags.push(Diagnostic::new(
                    Code::JjMismatch,
                    Some(g.names[c].clone()),
                    format!(
                        "component of kind `{}` reports {} JJs but the cell \
                         catalog says {expected}",
                        g.meta[c].kind, g.jj[c]
                    ),
                ));
            }
        }
    }
}

/// USFQ005 — strongly connected components of the comp→comp wire graph.
///
/// Returns the set of components that sit on any cycle (allowlisted or
/// not); the timing pass skips them and everything downstream. A cycle
/// is tolerated only if *every* member's name contains at least one
/// allowlist substring — otherwise it is an error, because a static
/// arrival-window analysis cannot bound it and a real pulse could
/// circulate forever.
pub(crate) fn cycles(g: &Graph, allowlist: &[String], diags: &mut Vec<Diagnostic>) -> Vec<bool> {
    let sccs = tarjan_sccs(g);
    let mut cyclic = vec![false; g.len()];
    for scc in &sccs {
        let is_cycle = scc.len() > 1 || g.succs[scc[0]].contains(&scc[0]);
        if !is_cycle {
            continue;
        }
        for &c in scc {
            cyclic[c] = true;
        }
        let covered = scc
            .iter()
            .all(|&c| allowlist.iter().any(|pat| g.names[c].contains(pat)));
        if !covered {
            let mut members: Vec<&str> = scc.iter().map(|&c| g.names[c].as_str()).collect();
            members.sort_unstable();
            diags.push(Diagnostic::new(
                Code::CombinationalCycle,
                Some(members[0].to_string()),
                format!(
                    "feedback loop through {{{}}} is not covered by the cycle \
                     allowlist; static timing cannot bound it",
                    members.join(", ")
                ),
            ));
        }
    }
    cyclic
}

/// Iterative Tarjan SCC over the component graph (no recursion: shipped
/// netlists chain hundreds of cells).
fn tarjan_sccs(g: &Graph) -> Vec<Vec<usize>> {
    const UNSET: usize = usize::MAX;
    let n = g.len();
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![UNSET; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0;
    let mut sccs = Vec::new();

    // Explicit call frames: (node, next successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = g.succs[v].get(*pos) {
                *pos += 1;
                if index[w] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}
