//! Conservative static timing: propagate `[min, max]` pulse-arrival
//! windows from the external inputs through wire and cell delays, then
//! test each component's declared hazards against the windows reaching
//! its input ports.
//!
//! The analysis is *sound* for acyclic pulse logic under the envelope
//! assumption (every external input pulses at most once, somewhere in
//! `[0, input_window]`): a simulated pulse can only ever arrive inside
//! the static window computed here — the soundness test suite checks
//! exactly that against the event simulator. It is deliberately
//! *incomplete*: windows overlapping does not prove two pulses really
//! collide, which is why hazard findings are warnings, not errors.

use usfq_sim::component::Hazard;
use usfq_sim::{ProbeSource, Time};

use crate::diag::{Code, Diagnostic};
use crate::graph::{Driver, Graph};
use crate::LintConfig;

/// A closed arrival interval `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Window {
    pub min: Time,
    pub max: Time,
}

impl Window {
    fn union(self, other: Window) -> Window {
        Window {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    fn shift(self, delay: Time) -> Window {
        Window {
            min: self.min + delay,
            max: self.max + delay,
        }
    }

    /// Can a pulse in `self` land within `margin` of a pulse in `other`?
    fn within(self, other: Window, margin: Time) -> bool {
        self.min <= other.max + margin && other.min <= self.max + margin
    }
}

/// Everything the timing pass derived, for callers beyond diagnostics.
pub(crate) struct TimingResult {
    /// Per probe: `(name, arrival window)`. `None` when the probe's
    /// source is skipped (cyclic region) or can never fire.
    pub probe_windows: Vec<(String, Option<(Time, Time)>)>,
    /// `port_windows[comp][port]` — arrival window at each input port.
    /// `None` when undriven or in a skipped (cyclic) region.
    pub port_windows: Vec<Vec<Option<Window>>>,
}

/// Runs the pass; `cyclic[c]` marks components on a feedback loop.
pub(crate) fn analyze(
    g: &Graph,
    cyclic: &[bool],
    cfg: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) -> TimingResult {
    // Timing is skipped on every cyclic component and everything it
    // feeds: their windows are unbounded.
    let mut skipped: Vec<bool> = cyclic.to_vec();
    let mut stack: Vec<usize> = (0..g.len()).filter(|&c| cyclic[c]).collect();
    while let Some(c) = stack.pop() {
        for &s in &g.succs[c] {
            if !skipped[s] {
                skipped[s] = true;
                stack.push(s);
            }
        }
    }
    let n_skipped = skipped.iter().filter(|&&s| s).count();
    if n_skipped > 0 {
        diags.push(Diagnostic::new(
            Code::TimingSkipped,
            None,
            format!(
                "{n_skipped} component(s) sit on or downstream of a feedback \
                 loop; arrival windows and hazard checks do not cover them"
            ),
        ));
    }

    let input_window = Window {
        min: Time::ZERO,
        max: cfg.input_window,
    };

    // Kahn topological order over the acyclic (non-skipped) region.
    // Every driver of a non-skipped component is either an external
    // input or another non-skipped component, so in-degrees close.
    let mut indegree = vec![0usize; g.len()];
    for c in 0..g.len() {
        if skipped[c] {
            continue;
        }
        indegree[c] = g.drivers[c]
            .iter()
            .flatten()
            .filter(|d| matches!(d, Driver::Comp(..)))
            .count();
    }
    let mut order: Vec<usize> = (0..g.len())
        .filter(|&c| !skipped[c] && indegree[c] == 0)
        .collect();
    let mut head = 0;
    while head < order.len() {
        let c = order[head];
        head += 1;
        for &s in &g.succs[c] {
            if skipped[s] {
                continue;
            }
            indegree[s] -= 1;
            if indegree[s] == 0 {
                order.push(s);
            }
        }
    }

    // Forward propagation. `out_window[c]` is the window in which `c`
    // can emit a pulse; `None` means it can never fire.
    let mut out_window: Vec<Option<Window>> = vec![None; g.len()];
    let mut port_windows: Vec<Vec<Option<Window>>> = g
        .drivers
        .iter()
        .map(|ports| vec![None; ports.len()])
        .collect();
    for &c in &order {
        for (port, drvs) in g.drivers[c].iter().enumerate() {
            for d in drvs {
                let arriving = match *d {
                    Driver::Input(_, delay) => Some(input_window.shift(delay)),
                    Driver::Comp(src, _, delay) => out_window[src].map(|w| w.shift(delay)),
                };
                if let Some(w) = arriving {
                    port_windows[c][port] =
                        Some(port_windows[c][port].map_or(w, |cur| cur.union(w)));
                }
            }
        }
        let driven = port_windows[c]
            .iter()
            .flatten()
            .copied()
            .reduce(Window::union);
        out_window[c] = driven.map(|w| Window {
            min: w.min + g.meta[c].min_delay,
            max: w.max + g.meta[c].max_delay,
        });
    }

    // Hazard checks on the covered region.
    for c in 0..g.len() {
        if skipped[c] {
            continue;
        }
        for hazard in &g.meta[c].hazards {
            check_hazard(g, c, hazard, &port_windows[c], diags);
        }
    }

    // Budget check and probe windows.
    let mut probe_windows = Vec::with_capacity(g.probes.len());
    for (name, source) in &g.probes {
        let window = match source {
            ProbeSource::Input(_) => Some((Time::ZERO, cfg.input_window)),
            ProbeSource::Output(comp, _) => {
                let c = comp.index();
                if skipped[c] {
                    None
                } else {
                    out_window[c].map(|w| (w.min, w.max))
                }
            }
        };
        if let (Some(budget), Some((_, max))) = (cfg.epoch_budget, window) {
            if max > budget {
                diags.push(Diagnostic::new(
                    Code::BudgetExceeded,
                    Some(name.clone()),
                    format!(
                        "worst-case arrival at this probe is {:.1} ps, past \
                         the {:.1} ps epoch budget",
                        max.as_ps(),
                        budget.as_ps()
                    ),
                ));
            }
        }
        probe_windows.push((name.clone(), window));
    }

    TimingResult {
        probe_windows,
        port_windows,
    }
}

fn check_hazard(
    g: &Graph,
    c: usize,
    hazard: &Hazard,
    ports: &[Option<Window>],
    diags: &mut Vec<Diagnostic>,
) {
    match *hazard {
        Hazard::Collision { window } => {
            // A zero-width window models ideal confluence: no possible
            // collision, nothing to check.
            if window == Time::ZERO {
                return;
            }
            for_each_overlap(ports, window, |a, b| {
                diags.push(Diagnostic::new(
                    Code::MergerCollision,
                    Some(g.names[c].clone()),
                    format!(
                        "pulses on input ports {a} and {b} can arrive within \
                         the {:.1} ps collision window of this {}; one pulse \
                         may be silently dropped",
                        window.as_ps(),
                        g.meta[c].kind
                    ),
                ));
            });
        }
        Hazard::Transition { window } => {
            for_each_overlap(ports, window, |a, b| {
                diags.push(Diagnostic::new(
                    Code::SetupRace,
                    Some(g.names[c].clone()),
                    format!(
                        "pulses on input ports {a} and {b} can land within \
                         the {:.1} ps internal-transition window of this {}; \
                         the second pulse may be misrouted",
                        window.as_ps(),
                        g.meta[c].kind
                    ),
                ));
            });
        }
        Hazard::Setup {
            control,
            sampled,
            window,
        } => {
            let (Some(ctrl), Some(smp)) = (
                ports.get(control).copied().flatten(),
                ports.get(sampled).copied().flatten(),
            ) else {
                return;
            };
            // The sampling pulse must not land while the control state
            // is still settling: [ctrl.min, ctrl.max + window] must not
            // intersect [smp.min, smp.max].
            let settling = Window {
                min: ctrl.min,
                max: ctrl.max + window,
            };
            if settling.within(smp, Time::ZERO) {
                diags.push(Diagnostic::new(
                    Code::SetupRace,
                    Some(g.names[c].clone()),
                    format!(
                        "input port {sampled} can sample this {} while port \
                         {control} is still settling (needs {:.1} ps of \
                         setup)",
                        g.meta[c].kind,
                        window.as_ps()
                    ),
                ));
            }
        }
        // `Hazard` is non-exhaustive: unknown future hazards are not
        // checkable here and must not crash the analyzer.
        _ => {}
    }
}

/// Invokes `hit(a, b)` for every pair of driven ports whose windows can
/// produce pulses within `margin` of each other.
fn for_each_overlap(ports: &[Option<Window>], margin: Time, mut hit: impl FnMut(usize, usize)) {
    for a in 0..ports.len() {
        let Some(wa) = ports[a] else { continue };
        for (b, wb) in ports.iter().enumerate().skip(a + 1) {
            let Some(wb) = *wb else { continue };
            if wa.within(wb, margin) {
                hit(a, b);
            }
        }
    }
}
