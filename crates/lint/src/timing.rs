//! Conservative static timing: propagate `[min, max]` pulse-arrival
//! windows from the external inputs through wire and cell delays, then
//! test each component's declared hazards against the windows reaching
//! its input ports.
//!
//! The analysis is *sound* for acyclic pulse logic under the envelope
//! assumption (every external input pulses at most once, somewhere in
//! `[0, input_window]`): a simulated pulse can only ever arrive inside
//! the static window computed here — the soundness test suite checks
//! exactly that against the event simulator. It is deliberately
//! *incomplete*: windows overlapping does not prove two pulses really
//! collide, which is why hazard findings are warnings, not errors.

use usfq_cells::catalog::t_jtl;
use usfq_sim::component::Hazard;
use usfq_sim::graph::{CircuitGraph as Graph, Driver};
use usfq_sim::{ProbeSource, Time};

use crate::diag::{Code, Diagnostic};
use crate::fix::Fix;
use crate::LintConfig;

/// A closed arrival interval `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Window {
    pub min: Time,
    pub max: Time,
}

impl Window {
    pub(crate) fn union(self, other: Window) -> Window {
        Window {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    fn shift(self, delay: Time) -> Window {
        Window {
            min: self.min + delay,
            max: self.max + delay,
        }
    }

    /// Can a pulse in `self` land within `margin` of a pulse in `other`?
    fn within(self, other: Window, margin: Time) -> bool {
        self.min <= other.max + margin && other.min <= self.max + margin
    }
}

/// Everything the timing pass derived, for callers beyond diagnostics.
pub(crate) struct TimingResult {
    /// Per probe: `(name, arrival window)`. `None` when the probe's
    /// source is skipped (cyclic region) or can never fire.
    pub probe_windows: Vec<(String, Option<(Time, Time)>)>,
    /// `port_windows[comp][port]` — arrival window at each input port.
    /// `None` when undriven or in a skipped (cyclic) region.
    pub port_windows: Vec<Vec<Option<Window>>>,
    /// `out_windows[comp]` — the window in which the component can emit
    /// a pulse. `None` when it can never fire or timing is skipped.
    pub out_windows: Vec<Option<Window>>,
    /// Components on or downstream of a feedback loop (windows
    /// unbounded, hazards unchecked).
    pub skipped: Vec<bool>,
    /// Topological order of the covered (non-skipped) region — the
    /// slack pass walks it backwards for required-time propagation.
    pub order: Vec<usize>,
}

impl TimingResult {
    /// The latest worst-case arrival over every covered probe: the
    /// minimal epoch budget this netlist can meet. `None` when no probe
    /// has a bounded window.
    pub fn max_probe_arrival(&self) -> Option<Time> {
        self.probe_windows
            .iter()
            .filter_map(|(_, w)| w.map(|(_, max)| max))
            .max()
    }
}

/// Runs the pass; `cyclic[c]` marks components on a feedback loop.
pub(crate) fn analyze(
    g: &Graph,
    cyclic: &[bool],
    cfg: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) -> TimingResult {
    // Timing is skipped on every cyclic component and everything it
    // feeds: their windows are unbounded.
    let mut skipped: Vec<bool> = cyclic.to_vec();
    let mut stack: Vec<usize> = (0..g.len()).filter(|&c| cyclic[c]).collect();
    while let Some(c) = stack.pop() {
        for &s in &g.succs[c] {
            if !skipped[s] {
                skipped[s] = true;
                stack.push(s);
            }
        }
    }
    let n_skipped = skipped.iter().filter(|&&s| s).count();
    if n_skipped > 0 {
        diags.push(Diagnostic::new(
            Code::TimingSkipped,
            None,
            format!(
                "{n_skipped} component(s) sit on or downstream of a feedback \
                 loop; arrival windows and hazard checks do not cover them"
            ),
        ));
    }

    let input_window = Window {
        min: Time::ZERO,
        max: cfg.input_window,
    };

    // Topological order over the acyclic (non-skipped) region. Every
    // driver of a non-skipped component is either an external input or
    // another non-skipped component, so in-degrees close.
    let order = g.topo_order(&skipped);

    // Forward propagation. `out_window[c]` is the window in which `c`
    // can emit a pulse; `None` means it can never fire.
    let mut out_window: Vec<Option<Window>> = vec![None; g.len()];
    let mut port_windows: Vec<Vec<Option<Window>>> = g
        .drivers
        .iter()
        .map(|ports| vec![None; ports.len()])
        .collect();
    for &c in &order {
        for (port, drvs) in g.drivers[c].iter().enumerate() {
            for d in drvs {
                let arriving = match *d {
                    Driver::Input(_, delay) => Some(input_window.shift(delay)),
                    Driver::Comp(src, _, delay) => out_window[src].map(|w| w.shift(delay)),
                };
                if let Some(w) = arriving {
                    port_windows[c][port] =
                        Some(port_windows[c][port].map_or(w, |cur| cur.union(w)));
                }
            }
        }
        let driven = port_windows[c]
            .iter()
            .flatten()
            .copied()
            .reduce(Window::union);
        out_window[c] = driven.map(|w| Window {
            min: w.min + g.meta[c].min_delay,
            max: w.max + g.meta[c].max_delay,
        });
    }

    // Hazard checks on the covered region.
    for c in 0..g.len() {
        if skipped[c] {
            continue;
        }
        for hazard in &g.meta[c].hazards {
            check_hazard(g, c, hazard, &port_windows[c], diags);
        }
    }

    // Budget check and probe windows.
    let mut probe_windows = Vec::with_capacity(g.probes.len());
    for (name, source) in &g.probes {
        let window = match source {
            ProbeSource::Input(_) => Some((Time::ZERO, cfg.input_window)),
            ProbeSource::Output(comp, _) => {
                let c = comp.index();
                if skipped[c] {
                    None
                } else {
                    out_window[c].map(|w| (w.min, w.max))
                }
            }
        };
        if let (Some(budget), Some((_, max))) = (cfg.epoch_budget, window) {
            if max > budget {
                diags.push(Diagnostic::new(
                    Code::BudgetExceeded,
                    Some(name.clone()),
                    format!(
                        "worst-case arrival at this probe is {:.1} ps, past \
                         the {:.1} ps epoch budget",
                        max.as_ps(),
                        budget.as_ps()
                    ),
                ));
            }
        }
        probe_windows.push((name.clone(), window));
    }

    TimingResult {
        probe_windows,
        port_windows,
        out_windows: out_window,
        skipped,
        order,
    }
}

/// The padding repair that delays `port` of component `c` by at least
/// `pad`: a JTL chain on every wire into the port, rounded up to whole
/// catalog stages. `None` when no padding is needed.
fn pad_fix(g: &Graph, c: usize, port: usize, pad: Time) -> Option<Fix> {
    if pad == Time::ZERO {
        return None;
    }
    let stage = t_jtl().as_fs();
    let count = pad.as_fs().div_ceil(stage);
    Some(Fix::InsertJtls {
        component: g.names[c].clone(),
        port,
        count: u32::try_from(count).unwrap_or(u32::MAX),
    })
}

/// Minimal delay that moves window `later` entirely past `earlier`'s
/// hazard margin: afterwards `later.min > earlier.max + margin`, so the
/// pair can no longer land within `margin` of each other.
fn separation_pad(earlier: Window, later: Window, margin: Time) -> Time {
    (earlier.max + margin + Time::from_fs(1)).saturating_sub(later.min)
}

fn check_hazard(
    g: &Graph,
    c: usize,
    hazard: &Hazard,
    ports: &[Option<Window>],
    diags: &mut Vec<Diagnostic>,
) {
    match *hazard {
        Hazard::Collision { window } => {
            // A zero-width window models ideal confluence: no possible
            // collision, nothing to check.
            if window == Time::ZERO {
                return;
            }
            for_each_overlap(ports, window, |a, b| {
                let mut d = Diagnostic::new(
                    Code::MergerCollision,
                    Some(g.names[c].clone()),
                    format!(
                        "pulses on input ports {a} and {b} can arrive within \
                         the {:.1} ps collision window of this {}; one pulse \
                         may be silently dropped",
                        window.as_ps(),
                        g.meta[c].kind
                    ),
                );
                if let Some(fix) = overlap_fix(g, c, a, b, ports, window) {
                    d = d.with_fix(fix);
                }
                diags.push(d);
            });
        }
        Hazard::Transition { window } => {
            for_each_overlap(ports, window, |a, b| {
                let mut d = Diagnostic::new(
                    Code::SetupRace,
                    Some(g.names[c].clone()),
                    format!(
                        "pulses on input ports {a} and {b} can land within \
                         the {:.1} ps internal-transition window of this {}; \
                         the second pulse may be misrouted",
                        window.as_ps(),
                        g.meta[c].kind
                    ),
                );
                if let Some(fix) = overlap_fix(g, c, a, b, ports, window) {
                    d = d.with_fix(fix);
                }
                diags.push(d);
            });
        }
        Hazard::Setup {
            control,
            sampled,
            window,
        } => {
            let (Some(ctrl), Some(smp)) = (
                ports.get(control).copied().flatten(),
                ports.get(sampled).copied().flatten(),
            ) else {
                return;
            };
            // The sampling pulse must not land while the control state
            // is still settling: [ctrl.min, ctrl.max + window] must not
            // intersect [smp.min, smp.max].
            let settling = Window {
                min: ctrl.min,
                max: ctrl.max + window,
            };
            if settling.within(smp, Time::ZERO) {
                let mut d = Diagnostic::new(
                    Code::SetupRace,
                    Some(g.names[c].clone()),
                    format!(
                        "input port {sampled} can sample this {} while port \
                         {control} is still settling (needs {:.1} ps of \
                         setup)",
                        g.meta[c].kind,
                        window.as_ps()
                    ),
                );
                // Only delaying the sampled side helps: the control
                // state must be fully settled before the sample lands.
                let pad = separation_pad(ctrl, smp, window);
                if let Some(fix) = pad_fix(g, c, sampled, pad) {
                    d = d.with_fix(fix);
                }
                diags.push(d);
            }
        }
        // `Hazard` is non-exhaustive: unknown future hazards are not
        // checkable here and must not crash the analyzer.
        _ => {}
    }
}

/// The cheaper of the two paddings that separate overlapping port
/// windows `a` and `b` by more than `margin`: delay whichever port
/// needs the smaller shift (ties go to the higher-numbered port, so
/// clock- or read-like late ports are preferred deterministically).
fn overlap_fix(
    g: &Graph,
    c: usize,
    a: usize,
    b: usize,
    ports: &[Option<Window>],
    margin: Time,
) -> Option<Fix> {
    let (wa, wb) = (ports[a]?, ports[b]?);
    let pad_a = separation_pad(wb, wa, margin);
    let pad_b = separation_pad(wa, wb, margin);
    if pad_a < pad_b {
        pad_fix(g, c, a, pad_a)
    } else {
        pad_fix(g, c, b, pad_b)
    }
}

/// Invokes `hit(a, b)` for every pair of driven ports whose windows can
/// produce pulses within `margin` of each other.
fn for_each_overlap(ports: &[Option<Window>], margin: Time, mut hit: impl FnMut(usize, usize)) {
    for a in 0..ports.len() {
        let Some(wa) = ports[a] else { continue };
        for (b, wb) in ports.iter().enumerate().skip(a + 1) {
            let Some(wb) = *wb else { continue };
            if wa.within(wb, margin) {
                hit(a, b);
            }
        }
    }
}
