//! Netlist view: re-exported from [`usfq_sim::graph`], where the
//! extraction now lives so both the lint checks and the simulator's
//! shard partitioner share one adjacency structure (and the sim crate
//! does not depend on lint).

pub(crate) use usfq_sim::graph::{CircuitGraph as Graph, Driver};
