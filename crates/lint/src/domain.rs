//! Encoding-domain and pulse-count dataflow analysis.
//!
//! Two abstract domains are propagated to a fixpoint over the netlist
//! graph, cycles included:
//!
//! * **Encoding domain** — per output port, which encoding the wire
//!   carries: race-logic (`Race`), pulse-stream (`Stream`), unresolved
//!   (`Bot`), or provably mixed (`Top`). The lattice is
//!   `Bot < {Race, Stream} < Top` with pointwise join; cell signatures
//!   come from [`usfq_cells::domain`]. Height 2, so the forward
//!   fixpoint needs no widening.
//! * **Pulse-count interval** — per output port, a conservative
//!   `[0, hi]` bound on how many pulses the port can emit per epoch,
//!   with `hi` either finite or `Unbounded`. Transfer functions follow
//!   each cell's hazard-free semantics (a TFF halves, a merger sums, an
//!   NDRO emits one pulse per clock read, …). Counts on feedback loops
//!   are widened to `Unbounded` after a bounded number of updates.
//!
//! The derived checks:
//!
//! * `USFQ011` — a `Race`/`Stream`-required input port driven by a wire
//!   resolved to the other (or to `Top`).
//! * `USFQ012` — worst-case count at a counting cell's data port
//!   exceeds its declared [`counting capacity`](usfq_sim::StaticMeta).
//! * `USFQ013` — a fully-wired, reachable cell all of whose outputs
//!   have count bound `0`: pulses arrive but provably never leave.
//! * `USFQ014` — a reachable cell none of whose outputs feed a wire or
//!   probe.
//! * `USFQ015` — a race-logic port whose worst-case static arrival
//!   (from the timing pass) lands past the declared epoch end.
//! * `USFQ016` — a stateful cell whose output fans out, through
//!   passthrough interconnect, into ports requiring conflicting
//!   domains.

use usfq_cells::domain::{signature_for, CellSignature, PortDomain};
use usfq_sim::graph::{CircuitGraph as Graph, Driver};
use usfq_sim::Time;

use crate::diag::{Code, Diagnostic};
use crate::timing::TimingResult;
use crate::LintConfig;

/// Abstract encoding carried by a wire. `Bot < {Race, Stream} < Top`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsDom {
    /// Unresolved: no concrete encoding has reached this wire.
    Bot,
    Race,
    Stream,
    /// Conflicting: both encodings can reach this wire.
    Top,
}

impl AbsDom {
    fn join(self, other: AbsDom) -> AbsDom {
        match (self, other) {
            (AbsDom::Bot, x) | (x, AbsDom::Bot) => x,
            (a, b) if a == b => a,
            _ => AbsDom::Top,
        }
    }

    fn name(self) -> &'static str {
        match self {
            AbsDom::Bot => "unresolved",
            AbsDom::Race => "race-logic",
            AbsDom::Stream => "pulse-stream",
            AbsDom::Top => "mixed",
        }
    }
}

/// Upper bound of a `[0, hi]` pulse-count interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Count {
    Finite(u64),
    Unbounded,
}

impl Count {
    const ZERO: Count = Count::Finite(0);

    fn add(self, other: Count) -> Count {
        match (self, other) {
            (Count::Finite(a), Count::Finite(b)) => Count::Finite(a.saturating_add(b)),
            _ => Count::Unbounded,
        }
    }

    fn min(self, other: Count) -> Count {
        match (self, other) {
            (Count::Finite(a), Count::Finite(b)) => Count::Finite(a.min(b)),
            (Count::Finite(a), Count::Unbounded) | (Count::Unbounded, Count::Finite(a)) => {
                Count::Finite(a)
            }
            _ => Count::Unbounded,
        }
    }

    fn halve_down(self) -> Count {
        match self {
            Count::Finite(a) => Count::Finite(a / 2),
            Count::Unbounded => Count::Unbounded,
        }
    }

    fn halve_up(self) -> Count {
        match self {
            Count::Finite(a) => Count::Finite(a.div_ceil(2)),
            Count::Unbounded => Count::Unbounded,
        }
    }

    fn is_zero(self) -> bool {
        self == Count::ZERO
    }
}

impl std::fmt::Display for Count {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Count::Finite(a) => write!(f, "{a}"),
            Count::Unbounded => f.write_str("unbounded"),
        }
    }
}

/// How many times a component's counts may be recomputed before its
/// outputs are widened to `Unbounded` (terminates loop growth).
const WIDEN_AFTER: u32 = 8;

fn domain_name(d: PortDomain) -> &'static str {
    match d {
        PortDomain::Race => "race-logic",
        PortDomain::Stream => "pulse-stream",
        PortDomain::Any => "any",
        PortDomain::Follow => "follow",
    }
}

/// A passthrough cell forwards pulses without reinterpreting them:
/// every output is declared [`PortDomain::Follow`].
fn is_passthrough(sig: &CellSignature) -> bool {
    !sig.outputs.is_empty() && sig.outputs.iter().all(|&d| d == PortDomain::Follow)
}

/// Runs the dataflow pass and appends findings to `diags`.
pub(crate) fn analyze(
    g: &Graph,
    timing: &TimingResult,
    cfg: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) {
    let n = g.len();
    let sigs: Vec<Option<CellSignature>> = (0..n)
        .map(|c| signature_for(g.meta[c].kind, g.drivers[c].len()))
        .collect();
    let reachable = g.reachable_from_inputs();

    let out_dom = domain_fixpoint(g, &sigs);
    let out_cnt = count_fixpoint(g, cfg);

    check_domain_mismatch(g, &sigs, &out_dom, diags);
    check_count_overflow(g, cfg, &out_cnt, diags);
    check_dead_cells(g, cfg, &reachable, &out_cnt, diags);
    check_unconsumed_outputs(g, &reachable, diags);
    check_race_past_epoch(g, &sigs, timing, cfg, diags);
    check_conflicting_fanout(g, &sigs, diags);
}

/// The latest worst-case arrival over every race-logic-required port:
/// the minimal `rl_epoch_end` this netlist can meet. `None` when no
/// covered port requires the race-logic domain. The `--fix` engine uses
/// this to extend the epoch end during timing closure, mirroring how
/// the budget itself is extended.
pub(crate) fn required_race_epoch_end(g: &Graph, timing: &TimingResult) -> Option<Time> {
    let sigs: Vec<Option<CellSignature>> = (0..g.len())
        .map(|c| signature_for(g.meta[c].kind, g.drivers[c].len()))
        .collect();
    let mut latest = None;
    for (c, sig) in sigs.iter().enumerate() {
        for port in 0..g.drivers[c].len() {
            if required_domain(sig.as_ref(), port) != Some(PortDomain::Race) {
                continue;
            }
            if let Some(window) = timing.port_windows[c][port] {
                latest = Some(latest.map_or(window.max, |l: Time| l.max(window.max)));
            }
        }
    }
    latest
}

/// The concrete domain an input port requires, if any.
fn required_domain(sig: Option<&CellSignature>, port: usize) -> Option<PortDomain> {
    match sig.and_then(|s| s.inputs.get(port)) {
        Some(&d @ (PortDomain::Race | PortDomain::Stream)) => Some(d),
        _ => None,
    }
}

/// Forward fixpoint of produced encoding domains. Only `Follow`
/// outputs change across iterations; the lattice has height 2 and
/// joins are monotone, so this terminates on any graph.
fn domain_fixpoint(g: &Graph, sigs: &[Option<CellSignature>]) -> Vec<Vec<AbsDom>> {
    let n = g.len();
    let mut out_dom: Vec<Vec<AbsDom>> = (0..n)
        .map(|c| {
            (0..g.out_ports[c])
                .map(|o| match sigs[c].and_then(|s| s.outputs.get(o).copied()) {
                    Some(PortDomain::Race) => AbsDom::Race,
                    Some(PortDomain::Stream) => AbsDom::Stream,
                    _ => AbsDom::Bot,
                })
                .collect()
        })
        .collect();

    let follows: Vec<usize> = (0..n)
        .filter(|&c| sigs[c].as_ref().is_some_and(is_passthrough))
        .collect();
    loop {
        let mut changed = false;
        for &c in &follows {
            // Join everything arriving on any input port: a passthrough
            // cell's outputs all carry the joined encoding.
            let mut dom = AbsDom::Bot;
            for drvs in &g.drivers[c] {
                for d in drvs {
                    if let Driver::Comp(src, sp, _) = *d {
                        dom = dom.join(out_dom[src][sp]);
                    }
                }
            }
            for slot in &mut out_dom[c] {
                if *slot != dom {
                    *slot = dom.join(*slot);
                    changed = true;
                }
            }
        }
        if !changed {
            return out_dom;
        }
    }
}

/// Sum of count bounds arriving at one input port.
fn port_count(g: &Graph, out_cnt: &[Vec<Count>], input_cap: Count, c: usize, port: usize) -> Count {
    let mut total = Count::ZERO;
    for d in &g.drivers[c][port] {
        total = total.add(match *d {
            Driver::Input(..) => input_cap,
            Driver::Comp(src, sp, _) => out_cnt[src][sp],
        });
    }
    total
}

/// Forward fixpoint of per-output pulse-count bounds, widened to
/// `Unbounded` on components updated more than [`WIDEN_AFTER`] times
/// (only feedback loops re-update a component).
fn count_fixpoint(g: &Graph, cfg: &LintConfig) -> Vec<Vec<Count>> {
    let n = g.len();
    let input_cap = match cfg.epoch_pulse_capacity {
        Some(cap) => Count::Finite(cap),
        None => Count::Unbounded,
    };
    let mut out_cnt: Vec<Vec<Count>> = (0..n).map(|c| vec![Count::ZERO; g.out_ports[c]]).collect();
    let mut bumps = vec![0u32; n];
    let mut queue: Vec<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(c) = queue.pop() {
        queued[c] = false;
        let ports: Vec<Count> = (0..g.drivers[c].len())
            .map(|p| port_count(g, &out_cnt, input_cap, c, p))
            .collect();
        let mut outs = transfer(g.meta[c].kind, &ports, g.out_ports[c]);
        if bumps[c] > WIDEN_AFTER {
            outs = vec![Count::Unbounded; g.out_ports[c]];
        }
        if outs != out_cnt[c] {
            out_cnt[c] = outs;
            bumps[c] += 1;
            for &s in &g.succs[c] {
                if !queued[s] {
                    queued[s] = true;
                    queue.push(s);
                }
            }
        }
    }
    out_cnt
}

/// Per-kind count transfer under hazard-free semantics. `ports` holds
/// the summed bound arriving at each input port.
fn transfer(kind: &str, ports: &[Count], n_out: usize) -> Vec<Count> {
    let total = ports.iter().fold(Count::ZERO, |a, &b| a.add(b));
    // No pulse ever arrives: the cell is never activated and cannot
    // emit, whatever its kind.
    if total.is_zero() {
        return vec![Count::ZERO; n_out];
    }
    let p = |i: usize| ports.get(i).copied().unwrap_or(Count::ZERO);
    match (kind, ports.len()) {
        ("jtl" | "buffer" | "splitter", 1) => vec![p(0); n_out],
        ("merger" | "mux", 2) => vec![total; n_out],
        ("demux", 2) => vec![p(0); n_out],
        ("dff", 2) => vec![p(1)],
        ("dff2", 3) => vec![p(1), p(2)],
        ("ndro", 3) => vec![p(2)],
        ("tff", 1) => vec![p(0).halve_down()],
        ("tff2", 1) => vec![p(0).halve_up(), p(0).halve_down()],
        // Emits at most one complement pulse per clock pulse.
        ("inverter", 2) => vec![p(1)],
        // One winner per race; a reset re-arms for one more.
        ("fa", 3) => vec![p(0).add(p(1)).min(Count::Finite(1).add(p(2)))],
        ("la", 3) => vec![p(0).min(p(1)).min(Count::Finite(1).add(p(2)))],
        ("inhibit", 3) => vec![p(0).min(Count::Finite(1).add(p(2)))],
        // Each output carries at most half the arriving pulses,
        // rounded up (the balancer splits evenly).
        ("balancer" | "routing-unit", 2) => vec![total.halve_up(); n_out],
        // One race pulse per epoch marker.
        ("integrator", 2) => vec![p(1)],
        ("integrator", 1) => vec![p(0)],
        // Unknown cell kinds: conservatively unbounded.
        _ => vec![Count::Unbounded; n_out],
    }
}

/// `USFQ011` — concrete produced domain disagrees with the concrete
/// required domain at a consumer port.
fn check_domain_mismatch(
    g: &Graph,
    sigs: &[Option<CellSignature>],
    out_dom: &[Vec<AbsDom>],
    diags: &mut Vec<Diagnostic>,
) {
    for (c, sig) in sigs.iter().enumerate() {
        for port in 0..g.drivers[c].len() {
            let Some(required) = required_domain(sig.as_ref(), port) else {
                continue;
            };
            for d in &g.drivers[c][port] {
                let Driver::Comp(src, sp, _) = *d else {
                    continue;
                };
                let produced = out_dom[src][sp];
                let mismatch = matches!(
                    (produced, required),
                    (AbsDom::Top, _)
                        | (AbsDom::Race, PortDomain::Stream)
                        | (AbsDom::Stream, PortDomain::Race)
                );
                if mismatch {
                    diags.push(Diagnostic::new(
                        Code::DomainMismatch,
                        Some(g.names[c].clone()),
                        format!(
                            "input port {port} of this {} requires a {} wire \
                             but is driven by {} output {} carrying a {} value",
                            g.meta[c].kind,
                            domain_name(required),
                            g.names[src],
                            sp,
                            produced.name()
                        ),
                    ));
                }
            }
        }
    }
}

/// `USFQ012` — the bound arriving at a counting cell's data port (port
/// 0 by convention, mirroring the runtime sanitizer) exceeds its
/// declared capacity. Only finite bounds are reported: an unbounded
/// bound is a cycle artifact, not a proof of overflow.
fn check_count_overflow(
    g: &Graph,
    cfg: &LintConfig,
    out_cnt: &[Vec<Count>],
    diags: &mut Vec<Diagnostic>,
) {
    let input_cap = match cfg.epoch_pulse_capacity {
        Some(cap) => Count::Finite(cap),
        None => Count::Unbounded,
    };
    for c in 0..g.len() {
        let Some(capacity) = g.meta[c].counting_capacity else {
            continue;
        };
        if g.drivers[c].is_empty() {
            continue;
        }
        let arriving = port_count(g, out_cnt, input_cap, c, 0);
        if let Count::Finite(hi) = arriving {
            if hi > capacity {
                diags.push(Diagnostic::new(
                    Code::CountOverflow,
                    Some(g.names[c].clone()),
                    format!(
                        "up to {hi} pulses can arrive at the data port of \
                         this {}, exceeding its counting capacity of \
                         {capacity}",
                        g.meta[c].kind
                    ),
                ));
            }
        }
    }
}

/// `USFQ013` — a reachable, fully-wired cell whose every output has
/// count bound zero while pulses do arrive. Cells with undriven inputs
/// are excluded: those are already `USFQ002` and their deadness is a
/// wiring gap, not a dataflow fact.
fn check_dead_cells(
    g: &Graph,
    cfg: &LintConfig,
    reachable: &[bool],
    out_cnt: &[Vec<Count>],
    diags: &mut Vec<Diagnostic>,
) {
    let input_cap = match cfg.epoch_pulse_capacity {
        Some(cap) => Count::Finite(cap),
        None => Count::Unbounded,
    };
    for c in 0..g.len() {
        if !reachable[c] || g.out_ports[c] == 0 {
            continue;
        }
        if g.drivers[c].iter().any(Vec::is_empty) {
            continue;
        }
        let dead = out_cnt[c].iter().all(|cnt| cnt.is_zero());
        if !dead {
            continue;
        }
        let arriving = (0..g.drivers[c].len())
            .map(|p| port_count(g, out_cnt, input_cap, c, p))
            .fold(Count::ZERO, Count::add);
        if !arriving.is_zero() {
            diags.push(Diagnostic::new(
                Code::DeadCell,
                Some(g.names[c].clone()),
                format!(
                    "up to {arriving} pulse(s) reach this {} per epoch but \
                     its outputs provably never fire",
                    g.meta[c].kind
                ),
            ));
        }
    }
}

/// `USFQ014` — a reachable cell with outputs, none of which feed a
/// wire or probe.
fn check_unconsumed_outputs(g: &Graph, reachable: &[bool], diags: &mut Vec<Diagnostic>) {
    let mut consumed: Vec<Vec<bool>> = (0..g.len()).map(|c| vec![false; g.out_ports[c]]).collect();
    for c in 0..g.len() {
        for drvs in &g.drivers[c] {
            for d in drvs {
                if let Driver::Comp(src, sp, _) = *d {
                    consumed[src][sp] = true;
                }
            }
        }
    }
    for (_, source) in &g.probes {
        if let usfq_sim::ProbeSource::Output(comp, port) = source {
            consumed[comp.index()][*port] = true;
        }
    }
    for c in 0..g.len() {
        if !reachable[c] || g.out_ports[c] == 0 {
            continue;
        }
        if consumed[c].iter().all(|&used| !used) {
            diags.push(Diagnostic::new(
                Code::UnconsumedOutput,
                Some(g.names[c].clone()),
                format!(
                    "no output of this {} feeds a wire or probe; every pulse \
                     it produces is silently discarded",
                    g.meta[c].kind
                ),
            ));
        }
    }
}

/// `USFQ015` — a race-logic input port whose worst-case static arrival
/// lands past the declared epoch end: the encoded value cannot be
/// represented inside the epoch.
fn check_race_past_epoch(
    g: &Graph,
    sigs: &[Option<CellSignature>],
    timing: &TimingResult,
    cfg: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(epoch_end) = cfg.rl_epoch_end else {
        return;
    };
    for (c, sig) in sigs.iter().enumerate() {
        for port in 0..g.drivers[c].len() {
            if required_domain(sig.as_ref(), port) != Some(PortDomain::Race) {
                continue;
            }
            let Some(window) = timing.port_windows[c][port] else {
                continue;
            };
            if window.max > epoch_end {
                diags.push(Diagnostic::new(
                    Code::RacePastEpoch,
                    Some(g.names[c].clone()),
                    format!(
                        "race-logic input port {port} of this {} can receive \
                         a pulse at {:.1} ps, past the {:.1} ps epoch end — \
                         the encoded value is unrepresentable",
                        g.meta[c].kind,
                        window.max.as_ps(),
                        epoch_end.as_ps()
                    ),
                ));
            }
        }
    }
}

/// `USFQ016` — a stateful cell's output reaches, through passthrough
/// interconnect, input ports requiring *both* concrete domains: its
/// internal state couples consumers that disagree on the encoding.
fn check_conflicting_fanout(
    g: &Graph,
    sigs: &[Option<CellSignature>],
    diags: &mut Vec<Diagnostic>,
) {
    // Invert `drivers` into a per-output consumer list.
    let mut consumers: Vec<Vec<Vec<(usize, usize)>>> = (0..g.len())
        .map(|c| vec![Vec::new(); g.out_ports[c]])
        .collect();
    for c in 0..g.len() {
        for (port, drvs) in g.drivers[c].iter().enumerate() {
            for d in drvs {
                if let Driver::Comp(src, sp, _) = *d {
                    consumers[src][sp].push((c, port));
                }
            }
        }
    }

    for c in 0..g.len() {
        let Some(sig) = sigs[c] else { continue };
        if !sig.stateful {
            continue;
        }
        for o in 0..g.out_ports[c] {
            let (mut wants_race, mut wants_stream) = (false, false);
            let mut stack = vec![(c, o)];
            let mut visited = vec![(c, o)];
            while let Some((src, sp)) = stack.pop() {
                for &(dst, dport) in &consumers[src][sp] {
                    match required_domain(sigs[dst].as_ref(), dport) {
                        Some(PortDomain::Race) => wants_race = true,
                        Some(PortDomain::Stream) => wants_stream = true,
                        _ => {}
                    }
                    if sigs[dst].as_ref().is_some_and(is_passthrough) {
                        for next_out in 0..g.out_ports[dst] {
                            if !visited.contains(&(dst, next_out)) {
                                visited.push((dst, next_out));
                                stack.push((dst, next_out));
                            }
                        }
                    }
                }
            }
            if wants_race && wants_stream {
                diags.push(Diagnostic::new(
                    Code::ConflictingFanout,
                    Some(g.names[c].clone()),
                    format!(
                        "output {o} of this stateful {} fans out into both a \
                         race-logic and a pulse-stream consumer; one of them \
                         misreads the cell's state",
                        g.meta[c].kind
                    ),
                ));
            }
        }
    }
}
