//! # usfq-lint — static netlist analysis for U-SFQ circuits
//!
//! Analyzes any [`usfq_sim::Circuit`] *without simulating it*:
//!
//! 1. **Structural checks** — single-fanout legality (`USFQ001`),
//!    unconnected input ports (`USFQ002`), components unreachable from
//!    every external input (`USFQ003`), probes on dead logic
//!    (`USFQ004`), feedback loops outside an explicit allowlist
//!    (`USFQ005`), and JJ counts that disagree with the cell catalog
//!    (`USFQ009`).
//! 2. **Static timing** — propagates conservative `[min, max]`
//!    pulse-arrival windows from the inputs through wire and cell
//!    delays, then flags merger collision-window overlaps (`USFQ006`),
//!    balancer-transition and NDRO/inverter setup races (`USFQ007`),
//!    and probes whose worst-case settling time blows the epoch budget
//!    (`USFQ008`).
//! 3. **Encoding-domain dataflow** — resolves which encoding (race-logic
//!    arrival time vs pulse-stream count) every wire carries and bounds
//!    worst-case pulse counts per output, to a fixpoint with widening
//!    on feedback loops. Flags domain mismatches (`USFQ011`), counter
//!    overflow (`USFQ012`), provably-dead cells (`USFQ013`), unconsumed
//!    outputs (`USFQ014`), race-logic arrivals past the epoch end
//!    (`USFQ015`), and stateful fanout into conflicting domains
//!    (`USFQ016`).
//!
//! Findings carry stable codes and render as text, JSON, or SARIF; see
//! [`LintReport`] and [`to_sarif`]. Netlists can acknowledge expected
//! findings with waivers, which downgrade matching diagnostics to
//! `Info` instead of hiding them. The `usfq-lint` binary runs the
//! analyzer over every netlist shipped in [`usfq_core::netlists`].
//!
//! ```
//! use usfq_lint::lint_netlist;
//!
//! for netlist in usfq_core::netlists::shipped_netlists() {
//!     let report = lint_netlist(&netlist);
//!     assert!(!report.has_errors(), "{}", report.render_text());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checks;
mod diag;
mod domain;
mod graph;
mod timing;

pub use diag::{to_sarif, Code, Diagnostic, LintReport, Severity};

use usfq_core::netlists::BuiltNetlist;
use usfq_sim::{Circuit, Time};

/// The operating envelope a circuit is analyzed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Every external input pulses at most once, somewhere in
    /// `[0, input_window]`.
    pub input_window: Time,
    /// If set, the latest pulse at any probe must not exceed this
    /// budget (`USFQ008` otherwise).
    pub epoch_budget: Option<Time>,
    /// Name substrings marking components allowed to sit on feedback
    /// loops. A cycle is tolerated (timing merely skipped, `USFQ010`)
    /// only when every member matches; otherwise it is a `USFQ005`
    /// error.
    pub cycle_allowlist: Vec<String>,
    /// Upper bound on pulses per external input per epoch (the epoch's
    /// `n_max` for shipped netlists). Seeds the pulse-count dataflow;
    /// `None` leaves input counts unbounded, silencing `USFQ012`.
    pub epoch_pulse_capacity: Option<u64>,
    /// Latest instant a race-logic pulse may arrive and still encode a
    /// representable value. Enables `USFQ015` when set.
    pub rl_epoch_end: Option<Time>,
    /// Waivers: `(code, component-substring)` pairs. A diagnostic whose
    /// code matches and whose component name contains the substring is
    /// downgraded to `Info` (still reported, marked `[waived]`).
    pub waivers: Vec<(String, String)>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            input_window: Time::ZERO,
            epoch_budget: None,
            cycle_allowlist: Vec::new(),
            epoch_pulse_capacity: None,
            rl_epoch_end: None,
            waivers: Vec::new(),
        }
    }
}

/// Runs every check on `circuit` under `config`.
pub fn lint(circuit: &Circuit, name: &str, config: &LintConfig) -> LintReport {
    let g = graph::Graph::build(circuit);
    let mut diags = Vec::new();
    checks::fanout(circuit, &mut diags);
    checks::unconnected_inputs(&g, &mut diags);
    checks::reachability(&g, &mut diags);
    checks::jj_accounting(&g, &mut diags);
    let cyclic = checks::cycles(&g, &config.cycle_allowlist, &mut diags);
    let timing = timing::analyze(&g, &cyclic, config, &mut diags);
    domain::analyze(&g, &timing, config, &mut diags);
    for d in &mut diags {
        let waived = config.waivers.iter().any(|(code, substr)| {
            code == d.code.as_str()
                && d.component
                    .as_deref()
                    .is_some_and(|c| c.contains(substr.as_str()))
        });
        if waived {
            d.waive();
        }
    }
    LintReport::new(name, diags)
}

/// Lints a shipped netlist under its own operating envelope.
pub fn lint_netlist(netlist: &BuiltNetlist) -> LintReport {
    lint(
        &netlist.circuit,
        netlist.name,
        &LintConfig {
            input_window: netlist.input_window,
            epoch_budget: Some(netlist.epoch_budget),
            cycle_allowlist: netlist.cycle_allowlist.clone(),
            epoch_pulse_capacity: Some(netlist.epoch.n_max()),
            rl_epoch_end: Some(netlist.input_window),
            waivers: netlist
                .waivers
                .iter()
                .map(|&(code, comp)| (code.to_string(), comp.to_string()))
                .collect(),
        },
    )
}

/// The static `[min, max]` arrival window of every probe, in probe
/// order. `None` when the probe's source is on or downstream of a
/// feedback loop, or can never fire at all.
///
/// This is the analyzer's soundness contract: for any single pulse per
/// input inside `[0, config.input_window]`, every simulated arrival at
/// a probe falls inside the window reported here. The test suite
/// property-checks that claim against the event simulator.
pub fn probe_windows(
    circuit: &Circuit,
    config: &LintConfig,
) -> Vec<(String, Option<(Time, Time)>)> {
    let g = graph::Graph::build(circuit);
    let mut scratch = Vec::new();
    let cyclic = checks::cycles(&g, &config.cycle_allowlist, &mut scratch);
    timing::analyze(&g, &cyclic, config, &mut scratch).probe_windows
}
