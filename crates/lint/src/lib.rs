//! # usfq-lint — static netlist analysis for U-SFQ circuits
//!
//! Analyzes any [`usfq_sim::Circuit`] *without simulating it*:
//!
//! 1. **Structural checks** — single-fanout legality (`USFQ001`),
//!    unconnected input ports (`USFQ002`), components unreachable from
//!    every external input (`USFQ003`), probes on dead logic
//!    (`USFQ004`), feedback loops outside an explicit allowlist
//!    (`USFQ005`), and JJ counts that disagree with the cell catalog
//!    (`USFQ009`).
//! 2. **Static timing** — propagates conservative `[min, max]`
//!    pulse-arrival windows from the inputs through wire and cell
//!    delays, then flags merger collision-window overlaps (`USFQ006`),
//!    balancer-transition and NDRO/inverter setup races (`USFQ007`),
//!    and probes whose worst-case settling time blows the epoch budget
//!    (`USFQ008`).
//! 3. **Encoding-domain dataflow** — resolves which encoding (race-logic
//!    arrival time vs pulse-stream count) every wire carries and bounds
//!    worst-case pulse counts per output, to a fixpoint with widening
//!    on feedback loops. Flags domain mismatches (`USFQ011`), counter
//!    overflow (`USFQ012`), provably-dead cells (`USFQ013`), unconsumed
//!    outputs (`USFQ014`), race-logic arrivals past the epoch end
//!    (`USFQ015`), and stateful fanout into conflicting domains
//!    (`USFQ016`).
//! 4. **Slack / timing closure** — a backward required-time pass from
//!    every probe endpoint against the epoch budget, reporting the
//!    worst-slack critical paths (`USFQ017`) and repairs whose padding
//!    bill exceeds the available slack (`USFQ018`). See [`slack_report`]
//!    and the [`fix`](crate::Fix) machinery: findings with a mechanical
//!    remedy carry a machine-applicable [`Fix`], and
//!    [`fix_to_fixpoint`] repairs a circuit to a clean lint fixpoint
//!    (`usfq-lint --fix`).
//!
//! Findings carry stable codes and render as text, JSON, or SARIF; see
//! [`LintReport`] and [`to_sarif`]. Netlists can acknowledge expected
//! findings with waivers, which downgrade matching diagnostics to
//! `Info` instead of hiding them. The `usfq-lint` binary runs the
//! analyzer over every netlist shipped in [`usfq_core::netlists`].
//!
//! ```
//! use usfq_lint::lint_netlist;
//!
//! for netlist in usfq_core::netlists::shipped_netlists() {
//!     let report = lint_netlist(&netlist);
//!     assert!(!report.has_errors(), "{}", report.render_text());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checks;
mod diag;
mod domain;
mod fix;
mod slack;
mod timing;

pub use diag::{to_sarif, Code, Diagnostic, LintReport, Severity};
pub use fix::{
    actionable_fixes, fix_to_fixpoint, fixes_from_sarif, Fix, FixOptions, FixOutcome, FixSource,
};
pub use slack::{EndpointSlack, SlackReport};
#[doc(inline)]
pub use usfq_sim::graph::{CircuitGraph, Driver};

use usfq_core::netlists::BuiltNetlist;
use usfq_sim::{Circuit, Time};

/// The operating envelope a circuit is analyzed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Every external input pulses at most once, somewhere in
    /// `[0, input_window]`.
    pub input_window: Time,
    /// If set, the latest pulse at any probe must not exceed this
    /// budget (`USFQ008` otherwise).
    pub epoch_budget: Option<Time>,
    /// Name substrings marking components allowed to sit on feedback
    /// loops. A cycle is tolerated (timing merely skipped, `USFQ010`)
    /// only when every member matches; otherwise it is a `USFQ005`
    /// error.
    pub cycle_allowlist: Vec<String>,
    /// Upper bound on pulses per external input per epoch (the epoch's
    /// `n_max` for shipped netlists). Seeds the pulse-count dataflow;
    /// `None` leaves input counts unbounded, silencing `USFQ012`.
    pub epoch_pulse_capacity: Option<u64>,
    /// Latest instant a race-logic pulse may arrive and still encode a
    /// representable value. Enables `USFQ015` when set.
    pub rl_epoch_end: Option<Time>,
    /// Waivers: `(code, component-substring)` pairs. A diagnostic whose
    /// code matches and whose component name contains the substring is
    /// downgraded to `Info` (still reported, marked `[waived]`).
    pub waivers: Vec<(String, String)>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            input_window: Time::ZERO,
            epoch_budget: None,
            cycle_allowlist: Vec::new(),
            epoch_pulse_capacity: None,
            rl_epoch_end: None,
            waivers: Vec::new(),
        }
    }
}

impl LintConfig {
    /// This envelope with every *timing* waiver (`USFQ006`–`USFQ008`)
    /// removed: the configuration `usfq-lint --fix` repairs under, so
    /// acknowledged hazards become actionable findings again while
    /// structural waivers (e.g. intentionally-floating config pins)
    /// stay acknowledged.
    pub fn without_timing_waivers(&self) -> LintConfig {
        let mut cfg = self.clone();
        cfg.waivers
            .retain(|(code, _)| !matches!(code.as_str(), "USFQ006" | "USFQ007" | "USFQ008"));
        cfg
    }
}

/// Whether a `(code, component-substring)` waiver list acknowledges a
/// finding of `code` on `component`.
pub(crate) fn waiver_matches(
    waivers: &[(String, String)],
    code: Code,
    component: Option<&str>,
) -> bool {
    waivers.iter().any(|(c, substr)| {
        c == code.as_str() && component.is_some_and(|name| name.contains(substr.as_str()))
    })
}

/// Runs every check on `circuit` under `config`.
pub fn lint(circuit: &Circuit, name: &str, config: &LintConfig) -> LintReport {
    let g = CircuitGraph::build(circuit);
    let mut diags = Vec::new();
    checks::fanout(circuit, &mut diags);
    checks::unconnected_inputs(&g, &mut diags);
    checks::reachability(&g, &mut diags);
    checks::jj_accounting(&g, &mut diags);
    let cyclic = checks::cycles(&g, &config.cycle_allowlist, &mut diags);
    let timing = timing::analyze(&g, &cyclic, config, &mut diags);
    slack::analyze(&g, &timing, config, &mut diags);
    domain::analyze(&g, &timing, config, &mut diags);
    for d in &mut diags {
        if waiver_matches(&config.waivers, d.code, d.component.as_deref()) {
            d.waive();
        }
    }
    LintReport::new(name, diags)
}

/// The [`LintConfig`] a shipped netlist is analyzed under: its own
/// operating envelope plus its acknowledged waivers.
pub fn lint_config_for(netlist: &BuiltNetlist) -> LintConfig {
    LintConfig {
        input_window: netlist.input_window,
        epoch_budget: Some(netlist.epoch_budget),
        cycle_allowlist: netlist.cycle_allowlist.clone(),
        epoch_pulse_capacity: Some(netlist.epoch.n_max()),
        rl_epoch_end: Some(netlist.input_window),
        waivers: netlist
            .waivers
            .iter()
            .map(|&(code, comp)| (code.to_string(), comp.to_string()))
            .collect(),
    }
}

/// Lints a shipped netlist under its own operating envelope.
pub fn lint_netlist(netlist: &BuiltNetlist) -> LintReport {
    lint(&netlist.circuit, netlist.name, &lint_config_for(netlist))
}

/// The static `[min, max]` arrival window of every probe, in probe
/// order. `None` when the probe's source is on or downstream of a
/// feedback loop, or can never fire at all.
///
/// This is the analyzer's soundness contract: for any single pulse per
/// input inside `[0, config.input_window]`, every simulated arrival at
/// a probe falls inside the window reported here. The test suite
/// property-checks that claim against the event simulator.
pub fn probe_windows(
    circuit: &Circuit,
    config: &LintConfig,
) -> Vec<(String, Option<(Time, Time)>)> {
    timing_parts(circuit, config).1.probe_windows
}

/// Runs only the slack/critical-path layer: per-endpoint arrival,
/// required time (the epoch budget), signed slack, and the
/// argmax-arrival critical path. Empty when `config.epoch_budget` is
/// `None` — slack is meaningless without a required time.
pub fn slack_report(circuit: &Circuit, config: &LintConfig) -> SlackReport {
    let (g, timing) = timing_parts(circuit, config);
    let mut scratch = Vec::new();
    slack::analyze(&g, &timing, config, &mut scratch)
}

/// Graph extraction + cycle detection + forward timing, diagnostics
/// discarded: the shared front half of [`probe_windows`],
/// [`slack_report`], and the `--fix` budget-extension step.
pub(crate) fn timing_parts(
    circuit: &Circuit,
    config: &LintConfig,
) -> (CircuitGraph, timing::TimingResult) {
    let g = CircuitGraph::build(circuit);
    let mut scratch = Vec::new();
    let cyclic = checks::cycles(&g, &config.cycle_allowlist, &mut scratch);
    let timing = timing::analyze(&g, &cyclic, config, &mut scratch);
    (g, timing)
}
