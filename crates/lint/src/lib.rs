//! # usfq-lint — static netlist analysis for U-SFQ circuits
//!
//! Analyzes any [`usfq_sim::Circuit`] *without simulating it*:
//!
//! 1. **Structural checks** — single-fanout legality (`USFQ001`),
//!    unconnected input ports (`USFQ002`), components unreachable from
//!    every external input (`USFQ003`), probes on dead logic
//!    (`USFQ004`), feedback loops outside an explicit allowlist
//!    (`USFQ005`), and JJ counts that disagree with the cell catalog
//!    (`USFQ009`).
//! 2. **Static timing** — propagates conservative `[min, max]`
//!    pulse-arrival windows from the inputs through wire and cell
//!    delays, then flags merger collision-window overlaps (`USFQ006`),
//!    balancer-transition and NDRO/inverter setup races (`USFQ007`),
//!    and probes whose worst-case settling time blows the epoch budget
//!    (`USFQ008`).
//!
//! Findings carry stable codes and render as text or JSON; see
//! [`LintReport`]. The `usfq-lint` binary runs the analyzer over every
//! netlist shipped in [`usfq_core::netlists`].
//!
//! ```
//! use usfq_lint::lint_netlist;
//!
//! for netlist in usfq_core::netlists::shipped_netlists() {
//!     let report = lint_netlist(&netlist);
//!     assert!(!report.has_errors(), "{}", report.render_text());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checks;
mod diag;
mod graph;
mod timing;

pub use diag::{Code, Diagnostic, LintReport, Severity};

use usfq_core::netlists::BuiltNetlist;
use usfq_sim::{Circuit, Time};

/// The operating envelope a circuit is analyzed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Every external input pulses at most once, somewhere in
    /// `[0, input_window]`.
    pub input_window: Time,
    /// If set, the latest pulse at any probe must not exceed this
    /// budget (`USFQ008` otherwise).
    pub epoch_budget: Option<Time>,
    /// Name substrings marking components allowed to sit on feedback
    /// loops. A cycle is tolerated (timing merely skipped, `USFQ010`)
    /// only when every member matches; otherwise it is a `USFQ005`
    /// error.
    pub cycle_allowlist: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            input_window: Time::ZERO,
            epoch_budget: None,
            cycle_allowlist: Vec::new(),
        }
    }
}

/// Runs every check on `circuit` under `config`.
pub fn lint(circuit: &Circuit, name: &str, config: &LintConfig) -> LintReport {
    let g = graph::Graph::build(circuit);
    let mut diags = Vec::new();
    checks::fanout(circuit, &mut diags);
    checks::unconnected_inputs(&g, &mut diags);
    checks::reachability(&g, &mut diags);
    checks::jj_accounting(&g, &mut diags);
    let cyclic = checks::cycles(&g, &config.cycle_allowlist, &mut diags);
    timing::analyze(&g, &cyclic, config, &mut diags);
    LintReport::new(name, diags)
}

/// Lints a shipped netlist under its own operating envelope.
pub fn lint_netlist(netlist: &BuiltNetlist) -> LintReport {
    lint(
        &netlist.circuit,
        netlist.name,
        &LintConfig {
            input_window: netlist.input_window,
            epoch_budget: Some(netlist.epoch_budget),
            cycle_allowlist: netlist.cycle_allowlist.clone(),
        },
    )
}

/// The static `[min, max]` arrival window of every probe, in probe
/// order. `None` when the probe's source is on or downstream of a
/// feedback loop, or can never fire at all.
///
/// This is the analyzer's soundness contract: for any single pulse per
/// input inside `[0, config.input_window]`, every simulated arrival at
/// a probe falls inside the window reported here. The test suite
/// property-checks that claim against the event simulator.
pub fn probe_windows(
    circuit: &Circuit,
    config: &LintConfig,
) -> Vec<(String, Option<(Time, Time)>)> {
    let g = graph::Graph::build(circuit);
    let mut scratch = Vec::new();
    let cyclic = checks::cycles(&g, &config.cycle_allowlist, &mut scratch);
    timing::analyze(&g, &cyclic, config, &mut scratch).probe_windows
}
