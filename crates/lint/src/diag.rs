//! Diagnostics: stable codes, severities, and report rendering.

use std::fmt;

/// Every check the analyzer performs, with a stable `USFQxxx` code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Code {
    /// `USFQ001` — an output (or external input) drives more than one
    /// sink without a splitter tree.
    FanoutViolation,
    /// `USFQ002` — a component input port has no driver.
    UnconnectedInput,
    /// `USFQ003` — a component is unreachable from every external input.
    UnreachableComponent,
    /// `USFQ004` — a probe taps a component that can never fire.
    DanglingProbe,
    /// `USFQ005` — a feedback loop not covered by the cycle allowlist.
    CombinationalCycle,
    /// `USFQ006` — two merger inputs can arrive within the collision
    /// window (paper Fig. 5 pulse loss).
    MergerCollision,
    /// `USFQ007` — a setup/transition race: a sampled or paired input
    /// can arrive inside another input's hazard window (§4.2 balancer
    /// transitions, NDRO/inverter setup).
    SetupRace,
    /// `USFQ008` — a probe's worst-case settling time exceeds the epoch
    /// budget.
    BudgetExceeded,
    /// `USFQ009` — a component's JJ count disagrees with the cell
    /// catalog entry for its kind.
    JjMismatch,
    /// `USFQ010` — timing analysis was skipped for components on or
    /// downstream of an (allowlisted) cycle.
    TimingSkipped,
}

impl Code {
    /// The stable textual code, e.g. `"USFQ006"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::FanoutViolation => "USFQ001",
            Code::UnconnectedInput => "USFQ002",
            Code::UnreachableComponent => "USFQ003",
            Code::DanglingProbe => "USFQ004",
            Code::CombinationalCycle => "USFQ005",
            Code::MergerCollision => "USFQ006",
            Code::SetupRace => "USFQ007",
            Code::BudgetExceeded => "USFQ008",
            Code::JjMismatch => "USFQ009",
            Code::TimingSkipped => "USFQ010",
        }
    }

    /// The severity this code is reported at.
    pub fn severity(self) -> Severity {
        match self {
            Code::FanoutViolation
            | Code::CombinationalCycle
            | Code::BudgetExceeded
            | Code::JjMismatch => Severity::Error,
            Code::UnconnectedInput
            | Code::UnreachableComponent
            | Code::DanglingProbe
            | Code::MergerCollision
            | Code::SetupRace => Severity::Warning,
            Code::TimingSkipped => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a finding is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note; never fails a run.
    Info,
    /// Suspicious but possibly intended (e.g. init-time NDRO ports).
    Warning,
    /// A defect: the netlist is rejected.
    Error,
}

impl Severity {
    /// Lower-case label used in both renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, anchored to a component (or input/probe) path when one
/// exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The check that fired.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// The offending component/input/probe name, if localized.
    pub component: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic for `code` at its default severity.
    pub fn new(code: Code, component: Option<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            component,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.code)?;
        if let Some(c) = &self.component {
            write!(f, " `{c}`")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of linting one netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Name of the analyzed netlist.
    pub netlist: String,
    /// All findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Creates a report, sorting findings by descending severity, then
    /// code, then component path.
    pub fn new(netlist: impl Into<String>, mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.code.cmp(&b.code))
                .then(a.component.cmp(&b.component))
                .then(a.message.cmp(&b.message))
        });
        LintReport {
            netlist: netlist.into(),
            diagnostics,
        }
    }

    /// True if any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count_severity(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count_severity(Severity::Warning)
    }

    fn count_severity(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Number of findings with the given code.
    pub fn count(&self, code: Code) -> usize {
        self.diagnostics.iter().filter(|d| d.code == code).count()
    }

    /// Whether a code fired at all.
    pub fn has(&self, code: Code) -> bool {
        self.count(code) > 0
    }

    /// Human-readable rendering, one finding per line.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s), {} finding(s)",
            self.netlist,
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len()
        );
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        out
    }

    /// JSON rendering (hand-rolled: the analyzer carries no serializer
    /// dependency).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"netlist\":\"{}\",\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            escape_json(&self.netlist),
            self.error_count(),
            self.warning_count()
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"component\":",
                d.code, d.severity
            );
            match &d.component {
                Some(c) => {
                    let _ = write!(out, "\"{}\"", escape_json(c));
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"message\":\"{}\"}}", escape_json(&d.message));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_ordered() {
        assert_eq!(Code::FanoutViolation.as_str(), "USFQ001");
        assert_eq!(Code::TimingSkipped.as_str(), "USFQ010");
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_sorts_and_counts() {
        let report = LintReport::new(
            "t",
            vec![
                Diagnostic::new(Code::TimingSkipped, None, "skipped"),
                Diagnostic::new(Code::FanoutViolation, Some("m".into()), "fanout"),
                Diagnostic::new(Code::MergerCollision, Some("m".into()), "collision"),
            ],
        );
        assert_eq!(report.diagnostics[0].code, Code::FanoutViolation);
        assert!(report.has_errors());
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(report.has(Code::TimingSkipped));
        assert_eq!(report.count(Code::BudgetExceeded), 0);
    }

    #[test]
    fn text_rendering_lists_findings() {
        let report = LintReport::new(
            "demo",
            vec![Diagnostic::new(
                Code::UnconnectedInput,
                Some("ndro".into()),
                "input 1 has no driver",
            )],
        );
        let text = report.render_text();
        assert!(text.contains("demo: 0 error(s), 1 warning(s)"));
        assert!(text.contains("warning [USFQ002] `ndro`: input 1 has no driver"));
    }

    #[test]
    fn json_rendering_escapes() {
        let report = LintReport::new(
            "d\"q",
            vec![Diagnostic::new(Code::JjMismatch, None, "line\nbreak")],
        );
        let json = report.to_json();
        assert!(json.contains("\"netlist\":\"d\\\"q\""));
        assert!(json.contains("\"component\":null"));
        assert!(json.contains("line\\nbreak"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
