//! Diagnostics: stable codes, severities, and report rendering.

use std::fmt;

use crate::fix::Fix;

/// Every check the analyzer performs, with a stable `USFQxxx` code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Code {
    /// `USFQ001` — an output (or external input) drives more than one
    /// sink without a splitter tree.
    FanoutViolation,
    /// `USFQ002` — a component input port has no driver.
    UnconnectedInput,
    /// `USFQ003` — a component is unreachable from every external input.
    UnreachableComponent,
    /// `USFQ004` — a probe taps a component that can never fire.
    DanglingProbe,
    /// `USFQ005` — a feedback loop not covered by the cycle allowlist.
    CombinationalCycle,
    /// `USFQ006` — two merger inputs can arrive within the collision
    /// window (paper Fig. 5 pulse loss).
    MergerCollision,
    /// `USFQ007` — a setup/transition race: a sampled or paired input
    /// can arrive inside another input's hazard window (§4.2 balancer
    /// transitions, NDRO/inverter setup).
    SetupRace,
    /// `USFQ008` — a probe's worst-case settling time exceeds the epoch
    /// budget.
    BudgetExceeded,
    /// `USFQ009` — a component's JJ count disagrees with the cell
    /// catalog entry for its kind.
    JjMismatch,
    /// `USFQ010` — timing analysis was skipped for components on or
    /// downstream of an (allowlisted) cycle.
    TimingSkipped,
    /// `USFQ011` — a port requiring one encoding domain (race-logic or
    /// pulse-stream) is driven by a wire resolved to the other.
    DomainMismatch,
    /// `USFQ012` — the worst-case pulse count arriving at a counting
    /// cell's data port exceeds its declared counting capacity.
    CountOverflow,
    /// `USFQ013` — a reachable component whose outputs provably never
    /// carry a pulse (count interval `[0, 0]`).
    DeadCell,
    /// `USFQ014` — a reachable component none of whose outputs feed a
    /// wire or probe: every pulse it produces is silently discarded.
    UnconsumedOutput,
    /// `USFQ015` — a race-logic port whose worst-case arrival lands past
    /// the declared epoch end, so the encoded value is unrepresentable.
    RacePastEpoch,
    /// `USFQ016` — a stateful cell's output fans out (through
    /// passthrough interconnect) into ports requiring conflicting
    /// domains, coupling consumers that disagree on the encoding.
    ConflictingFanout,
    /// `USFQ017` — informational critical-path report: one of the K
    /// worst-slack probe endpoints, with its slack against the epoch
    /// budget and the argmax-arrival path back to an external input.
    CriticalPath,
    /// `USFQ018` — a suggested repair needs more padding than the
    /// repaired component has downstream slack, so applying it forces
    /// the epoch budget to stretch (timing closure at an area *and*
    /// latency cost).
    SlackDeficit,
}

impl Code {
    /// The stable textual code, e.g. `"USFQ006"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::FanoutViolation => "USFQ001",
            Code::UnconnectedInput => "USFQ002",
            Code::UnreachableComponent => "USFQ003",
            Code::DanglingProbe => "USFQ004",
            Code::CombinationalCycle => "USFQ005",
            Code::MergerCollision => "USFQ006",
            Code::SetupRace => "USFQ007",
            Code::BudgetExceeded => "USFQ008",
            Code::JjMismatch => "USFQ009",
            Code::TimingSkipped => "USFQ010",
            Code::DomainMismatch => "USFQ011",
            Code::CountOverflow => "USFQ012",
            Code::DeadCell => "USFQ013",
            Code::UnconsumedOutput => "USFQ014",
            Code::RacePastEpoch => "USFQ015",
            Code::ConflictingFanout => "USFQ016",
            Code::CriticalPath => "USFQ017",
            Code::SlackDeficit => "USFQ018",
        }
    }

    /// Every code, in `USFQ001..=USFQ018` order (SARIF rule inventory).
    pub fn all() -> &'static [Code] {
        &[
            Code::FanoutViolation,
            Code::UnconnectedInput,
            Code::UnreachableComponent,
            Code::DanglingProbe,
            Code::CombinationalCycle,
            Code::MergerCollision,
            Code::SetupRace,
            Code::BudgetExceeded,
            Code::JjMismatch,
            Code::TimingSkipped,
            Code::DomainMismatch,
            Code::CountOverflow,
            Code::DeadCell,
            Code::UnconsumedOutput,
            Code::RacePastEpoch,
            Code::ConflictingFanout,
            Code::CriticalPath,
            Code::SlackDeficit,
        ]
    }

    /// One-line rule description (SARIF `shortDescription`).
    pub fn summary(self) -> &'static str {
        match self {
            Code::FanoutViolation => "output drives multiple sinks without a splitter",
            Code::UnconnectedInput => "component input port has no driver",
            Code::UnreachableComponent => "component unreachable from every external input",
            Code::DanglingProbe => "probe taps a component that can never fire",
            Code::CombinationalCycle => "feedback loop outside the cycle allowlist",
            Code::MergerCollision => "merger inputs can collide within the loss window",
            Code::SetupRace => "setup/transition hazard window can be violated",
            Code::BudgetExceeded => "worst-case settling exceeds the epoch budget",
            Code::JjMismatch => "JJ count disagrees with the cell catalog",
            Code::TimingSkipped => "timing analysis skipped on a cyclic region",
            Code::DomainMismatch => "port driven by the wrong encoding domain",
            Code::CountOverflow => "pulse count can exceed the cell's counting capacity",
            Code::DeadCell => "reachable component provably never emits a pulse",
            Code::UnconsumedOutput => "no output of this component is wired or probed",
            Code::RacePastEpoch => "race-logic arrival can land past the epoch end",
            Code::ConflictingFanout => "stateful cell fans out into conflicting domains",
            Code::CriticalPath => "worst-slack critical path to this probe endpoint",
            Code::SlackDeficit => "suggested repair exceeds the downstream slack",
        }
    }

    /// The severity this code is reported at.
    pub fn severity(self) -> Severity {
        match self {
            Code::FanoutViolation
            | Code::CombinationalCycle
            | Code::BudgetExceeded
            | Code::JjMismatch => Severity::Error,
            Code::DomainMismatch | Code::ConflictingFanout => Severity::Error,
            Code::UnconnectedInput
            | Code::UnreachableComponent
            | Code::DanglingProbe
            | Code::MergerCollision
            | Code::SetupRace
            | Code::CountOverflow
            | Code::DeadCell
            | Code::UnconsumedOutput
            | Code::RacePastEpoch
            | Code::SlackDeficit => Severity::Warning,
            Code::TimingSkipped | Code::CriticalPath => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a finding is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note; never fails a run.
    Info,
    /// Suspicious but possibly intended (e.g. init-time NDRO ports).
    Warning,
    /// A defect: the netlist is rejected.
    Error,
}

impl Severity {
    /// Lower-case label used in both renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, anchored to a component (or input/probe) path when one
/// exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The check that fired.
    pub code: Code,
    /// Severity: `code.severity()` unless the finding was waived, in
    /// which case it is downgraded to [`Severity::Info`].
    pub severity: Severity,
    /// The offending component/input/probe name, if localized.
    pub component: Option<String>,
    /// Human-readable explanation.
    pub message: String,
    /// A machine-applicable repair, when the finding has a mechanical
    /// remedy. Serialized into SARIF `fixes` and applied by
    /// `usfq-lint --fix`.
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// Creates a diagnostic for `code` at its default severity.
    pub fn new(code: Code, component: Option<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            component,
            message: message.into(),
            fix: None,
        }
    }

    /// Attaches a machine-applicable repair.
    pub fn with_fix(mut self, fix: Fix) -> Self {
        self.fix = Some(fix);
        self
    }

    /// Downgrades the finding to [`Severity::Info`], marking it as
    /// acknowledged by a netlist waiver. The original code is kept so
    /// reports stay auditable.
    pub fn waive(&mut self) {
        if self.severity > Severity::Info {
            self.severity = Severity::Info;
            self.message.push_str(" [waived]");
        }
    }

    /// Whether this finding was downgraded by [`Diagnostic::waive`].
    pub fn is_waived(&self) -> bool {
        self.severity == Severity::Info && self.code.severity() > Severity::Info
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.code)?;
        if let Some(c) = &self.component {
            write!(f, " `{c}`")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(fix) = &self.fix {
            write!(f, " [fix: {}]", fix.to_directive())?;
        }
        Ok(())
    }
}

/// The outcome of linting one netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Name of the analyzed netlist.
    pub netlist: String,
    /// All findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Creates a report, sorting findings by descending severity, then
    /// code, then component path.
    pub fn new(netlist: impl Into<String>, mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.code.cmp(&b.code))
                .then(a.component.cmp(&b.component))
                .then(a.message.cmp(&b.message))
        });
        LintReport {
            netlist: netlist.into(),
            diagnostics,
        }
    }

    /// True if any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count_severity(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count_severity(Severity::Warning)
    }

    fn count_severity(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// The most severe finding in the report, if any.
    pub fn worst_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Number of findings with the given code.
    pub fn count(&self, code: Code) -> usize {
        self.diagnostics.iter().filter(|d| d.code == code).count()
    }

    /// Whether a code fired at all.
    pub fn has(&self, code: Code) -> bool {
        self.count(code) > 0
    }

    /// Human-readable rendering, one finding per line.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s), {} finding(s)",
            self.netlist,
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len()
        );
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        out
    }

    /// JSON rendering (hand-rolled: the analyzer carries no serializer
    /// dependency).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"netlist\":\"{}\",\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            escape_json(&self.netlist),
            self.error_count(),
            self.warning_count()
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"component\":",
                d.code, d.severity
            );
            match &d.component {
                Some(c) => {
                    let _ = write!(out, "\"{}\"", escape_json(c));
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"message\":\"{}\",\"fix\":", escape_json(&d.message));
            match &d.fix {
                Some(fix) => {
                    let _ = write!(out, "\"{}\"", escape_json(&fix.to_directive()));
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Renders a set of reports as a single SARIF 2.1.0 log (one run, one
/// result per diagnostic), for code-scanning upload and CI annotation.
/// Hand-rolled like [`LintReport::to_json`]: no serializer dependency.
pub fn to_sarif(reports: &[LintReport]) -> String {
    use std::fmt::Write as _;

    fn sarif_level(s: Severity) -> &'static str {
        match s {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "note",
        }
    }

    let mut out = String::new();
    out.push_str(
        "{\"version\":\"2.1.0\",\
         \"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"runs\":[{\"tool\":{\"driver\":{\"name\":\"usfq-lint\",\
         \"informationUri\":\"https://example.invalid/usfq-lint\",\
         \"rules\":[",
    );
    for (i, code) in Code::all().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\
             \"defaultConfiguration\":{{\"level\":\"{}\"}}}}",
            code.as_str(),
            escape_json(code.summary()),
            sarif_level(code.severity())
        );
    }
    out.push_str("]}},\"results\":[");
    let mut first = true;
    for report in reports {
        for d in &report.diagnostics {
            if !first {
                out.push(',');
            }
            first = false;
            let location = match &d.component {
                Some(c) => format!("{}::{}", report.netlist, c),
                None => report.netlist.clone(),
            };
            let _ = write!(
                out,
                "{{\"ruleId\":\"{}\",\"level\":\"{}\",\
                 \"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"logicalLocations\":[{{\
                 \"fullyQualifiedName\":\"{}\"}}]}}]",
                d.code,
                sarif_level(d.severity),
                escape_json(&d.message),
                escape_json(&location)
            );
            // Machine-applicable repairs ride along as SARIF fixes: the
            // netlist is not a text artifact, so the "replacement" is an
            // insertion of the repair directive at a synthetic location
            // in a `usfq-netlist:` URI. `fixes_from_sarif` reverses this.
            if let Some(fix) = &d.fix {
                let _ = write!(
                    out,
                    ",\"fixes\":[{{\"description\":{{\"text\":\"{}\"}},\
                     \"artifactChanges\":[{{\
                     \"artifactLocation\":{{\"uri\":\"usfq-netlist:{}\"}},\
                     \"replacements\":[{{\
                     \"deletedRegion\":{{\"startLine\":1,\"startColumn\":1,\
                     \"endLine\":1,\"endColumn\":1}},\
                     \"insertedContent\":{{\"text\":\"{}\"}}}}]}}]}}]",
                    escape_json(&fix.describe()),
                    escape_json(&report.netlist),
                    escape_json(&fix.to_directive())
                );
            }
            out.push('}');
        }
    }
    out.push_str("]}]}");
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_ordered() {
        assert_eq!(Code::FanoutViolation.as_str(), "USFQ001");
        assert_eq!(Code::TimingSkipped.as_str(), "USFQ010");
        assert_eq!(Code::DomainMismatch.as_str(), "USFQ011");
        assert_eq!(Code::ConflictingFanout.as_str(), "USFQ016");
        assert_eq!(Code::CriticalPath.as_str(), "USFQ017");
        assert_eq!(Code::SlackDeficit.as_str(), "USFQ018");
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        let all = Code::all();
        assert_eq!(all.len(), 18);
        for (i, code) in all.iter().enumerate() {
            assert_eq!(code.as_str(), format!("USFQ{:03}", i + 1));
            assert!(!code.summary().is_empty());
        }
    }

    #[test]
    fn waive_downgrades_to_info_and_is_detectable() {
        let mut d = Diagnostic::new(Code::SetupRace, Some("ndro".into()), "race");
        assert!(!d.is_waived());
        d.waive();
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.ends_with("[waived]"));
        assert!(d.is_waived());
        // Waiving twice does not stack the marker.
        d.waive();
        assert_eq!(d.message.matches("[waived]").count(), 1);
        // A genuine Info finding is not "waived".
        let info = Diagnostic::new(Code::TimingSkipped, None, "skipped");
        assert!(!info.is_waived());
    }

    #[test]
    fn worst_severity_reflects_top_finding() {
        let empty = LintReport::new("e", vec![]);
        assert_eq!(empty.worst_severity(), None);
        let warn = LintReport::new("w", vec![Diagnostic::new(Code::SetupRace, None, "race")]);
        assert_eq!(warn.worst_severity(), Some(Severity::Warning));
    }

    #[test]
    fn sarif_log_lists_rules_and_results() {
        let reports = vec![LintReport::new(
            "demo",
            vec![Diagnostic::new(
                Code::DomainMismatch,
                Some("tff".into()),
                "stream port driven by race wire",
            )],
        )];
        let sarif = to_sarif(&reports);
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"name\":\"usfq-lint\""));
        // All eighteen rules are declared even when only one fires.
        for code in Code::all() {
            assert!(sarif.contains(&format!("\"id\":\"{}\"", code.as_str())));
        }
        assert!(sarif.contains("\"ruleId\":\"USFQ011\""));
        assert!(sarif.contains("\"level\":\"error\""));
        assert!(sarif.contains("\"fullyQualifiedName\":\"demo::tff\""));
        // Balanced braces: cheap structural sanity for the hand-rolled JSON.
        assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
    }

    #[test]
    fn report_sorts_and_counts() {
        let report = LintReport::new(
            "t",
            vec![
                Diagnostic::new(Code::TimingSkipped, None, "skipped"),
                Diagnostic::new(Code::FanoutViolation, Some("m".into()), "fanout"),
                Diagnostic::new(Code::MergerCollision, Some("m".into()), "collision"),
            ],
        );
        assert_eq!(report.diagnostics[0].code, Code::FanoutViolation);
        assert!(report.has_errors());
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(report.has(Code::TimingSkipped));
        assert_eq!(report.count(Code::BudgetExceeded), 0);
    }

    #[test]
    fn text_rendering_lists_findings() {
        let report = LintReport::new(
            "demo",
            vec![Diagnostic::new(
                Code::UnconnectedInput,
                Some("ndro".into()),
                "input 1 has no driver",
            )],
        );
        let text = report.render_text();
        assert!(text.contains("demo: 0 error(s), 1 warning(s)"));
        assert!(text.contains("warning [USFQ002] `ndro`: input 1 has no driver"));
    }

    #[test]
    fn json_rendering_escapes() {
        let report = LintReport::new(
            "d\"q",
            vec![Diagnostic::new(Code::JjMismatch, None, "line\nbreak")],
        );
        let json = report.to_json();
        assert!(json.contains("\"netlist\":\"d\\\"q\""));
        assert!(json.contains("\"component\":null"));
        assert!(json.contains("line\\nbreak"));
        assert!(json.contains("\"fix\":null"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn fixes_render_in_every_format() {
        let fix = crate::Fix::InsertJtls {
            component: "acc".into(),
            port: 1,
            count: 2,
        };
        let report = LintReport::new(
            "demo",
            vec![Diagnostic::new(Code::SetupRace, Some("acc".into()), "race").with_fix(fix)],
        );
        let text = report.render_text();
        assert!(text.contains("[fix: insert-jtls at=acc#1 count=2]"));
        let json = report.to_json();
        assert!(json.contains("\"fix\":\"insert-jtls at=acc#1 count=2\""));
        let sarif = to_sarif(std::slice::from_ref(&report));
        assert!(sarif.contains("\"fixes\":["));
        assert!(sarif.contains("\"uri\":\"usfq-netlist:demo\""));
        assert!(sarif.contains("insert-jtls at=acc#1 count=2"));
        assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
    }
}
