//! Every lint check must fire on a circuit seeded with exactly that
//! defect — and stay quiet on a clean one.

use usfq_cells::{Balancer, Dff, FirstArrival, Jtl, Merger, Ndro, Splitter, Tff};
use usfq_lint::{lint, lint_netlist, probe_windows, Code, LintConfig, Severity};
use usfq_sim::component::{Component, Ctx, StaticMeta};
use usfq_sim::{Circuit, Time};

fn ps(v: f64) -> Time {
    Time::from_ps(v)
}

fn window_config(input_window: Time) -> LintConfig {
    LintConfig {
        input_window,
        ..LintConfig::default()
    }
}

#[test]
fn clean_chain_reports_nothing() {
    let mut c = Circuit::new();
    let input = c.input("in");
    let j = c.add(Jtl::new("j"));
    c.connect_input(input, j.input(0), Time::ZERO).unwrap();
    c.probe(j.output(0), "out");

    let report = lint(&c, "clean", &LintConfig::default());
    assert!(
        report.diagnostics.is_empty(),
        "unexpected findings:\n{}",
        report.render_text()
    );
}

#[test]
fn usfq001_fires_on_unsplit_fanout() {
    let mut c = Circuit::new();
    let input = c.input("in");
    let src = c.add(Jtl::new("src"));
    let a = c.add(Jtl::new("a"));
    let b = c.add(Jtl::new("b"));
    c.connect_input(input, src.input(0), Time::ZERO).unwrap();
    // Electrical fan-out without a splitter: illegal in physical RSFQ.
    c.connect(src.output(0), a.input(0), Time::ZERO).unwrap();
    c.connect(src.output(0), b.input(0), Time::ZERO).unwrap();

    let report = lint(&c, "fanout", &LintConfig::default());
    assert!(report.has(Code::FanoutViolation));
    assert!(report.has_errors());
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::FanoutViolation)
        .unwrap();
    assert_eq!(diag.component.as_deref(), Some("src"));
    assert!(diag.message.contains("2 sinks"));
}

#[test]
fn usfq002_fires_on_floating_input_port() {
    let mut c = Circuit::new();
    let input = c.input("in");
    let m = c.add(Merger::with_window("m", Time::ZERO));
    // Only IN_A is wired; IN_B floats.
    c.connect_input(input, m.input(Merger::IN_A), Time::ZERO)
        .unwrap();
    c.probe(m.output(Merger::OUT), "out");

    let report = lint(&c, "floating", &LintConfig::default());
    assert!(report.has(Code::UnconnectedInput));
    assert!(!report.has_errors(), "USFQ002 is a warning, not an error");
}

#[test]
fn usfq003_and_usfq004_fire_on_dead_logic() {
    let mut c = Circuit::new();
    let input = c.input("in");
    let live = c.add(Jtl::new("live"));
    c.connect_input(input, live.input(0), Time::ZERO).unwrap();
    c.probe(live.output(0), "ok");
    // An island no input reaches, with a probe on it.
    let dead = c.add(Jtl::new("dead"));
    c.probe(dead.output(0), "silent");

    let report = lint(&c, "dead", &LintConfig::default());
    assert!(report.has(Code::UnreachableComponent));
    assert!(report.has(Code::DanglingProbe));
    let dangling = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::DanglingProbe)
        .unwrap();
    assert_eq!(dangling.component.as_deref(), Some("silent"));
}

#[test]
fn usfq005_fires_on_unallowlisted_cycle() {
    let mut c = Circuit::new();
    let input = c.input("in");
    let m = c.add(Merger::with_window("m", Time::ZERO));
    let j = c.add(Jtl::new("j"));
    c.connect_input(input, m.input(Merger::IN_A), Time::ZERO)
        .unwrap();
    c.connect(m.output(Merger::OUT), j.input(0), Time::ZERO)
        .unwrap();
    // Feedback: the JTL re-enters the merger.
    c.connect(j.output(0), m.input(Merger::IN_B), Time::ZERO)
        .unwrap();
    c.probe(j.output(0), "out");

    let report = lint(&c, "cycle", &LintConfig::default());
    assert!(report.has(Code::CombinationalCycle));
    assert!(report.has_errors());
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::CombinationalCycle)
        .unwrap();
    assert!(diag.message.contains('j') && diag.message.contains('m'));
}

#[test]
fn usfq010_allowlisted_cycle_downgrades_to_skipped_timing() {
    let mut c = Circuit::new();
    let input = c.input("in");
    let m = c.add(Merger::with_window("ring_m", Time::ZERO));
    let j = c.add(Jtl::new("ring_j"));
    c.connect_input(input, m.input(Merger::IN_A), Time::ZERO)
        .unwrap();
    c.connect(m.output(Merger::OUT), j.input(0), Time::ZERO)
        .unwrap();
    c.connect(j.output(0), m.input(Merger::IN_B), Time::ZERO)
        .unwrap();
    c.probe(j.output(0), "out");

    let config = LintConfig {
        cycle_allowlist: vec!["ring".to_string()],
        ..LintConfig::default()
    };
    let report = lint(&c, "ring", &config);
    assert!(!report.has(Code::CombinationalCycle));
    assert!(report.has(Code::TimingSkipped));
    assert!(!report.has_errors());

    // The probe sits on the ring: its arrival window is unknowable.
    let windows = probe_windows(&c, &config);
    assert_eq!(windows.len(), 1);
    assert_eq!(windows[0], ("out".to_string(), None));
}

#[test]
fn usfq006_fires_on_overlapping_merger_inputs() {
    let mut c = Circuit::new();
    let a = c.input("a");
    let b = c.input("b");
    let m = c.add(Merger::new("m")); // real t_merger collision window
    c.connect_input(a, m.input(Merger::IN_A), Time::ZERO)
        .unwrap();
    c.connect_input(b, m.input(Merger::IN_B), Time::ZERO)
        .unwrap();
    c.probe(m.output(Merger::OUT), "out");

    // Both inputs can pulse anywhere in [0, 100 ps]: windows overlap.
    let report = lint(&c, "collision", &window_config(ps(100.0)));
    assert!(report.has(Code::MergerCollision));
    assert!(!report.has_errors(), "hazards are warnings");

    // An ideal (zero-window) merger cannot collide.
    let mut c2 = Circuit::new();
    let a2 = c2.input("a");
    let b2 = c2.input("b");
    let m2 = c2.add(Merger::with_window("m", Time::ZERO));
    c2.connect_input(a2, m2.input(Merger::IN_A), Time::ZERO)
        .unwrap();
    c2.connect_input(b2, m2.input(Merger::IN_B), Time::ZERO)
        .unwrap();
    c2.probe(m2.output(Merger::OUT), "out");
    let report2 = lint(&c2, "ideal", &window_config(ps(100.0)));
    assert!(!report2.has(Code::MergerCollision));
}

#[test]
fn usfq007_fires_on_balancer_transition_overlap() {
    let mut c = Circuit::new();
    let a = c.input("a");
    let b = c.input("b");
    let bal = c.add(Balancer::new("bal"));
    c.connect_input(a, bal.input(Balancer::IN_A), Time::ZERO)
        .unwrap();
    c.connect_input(b, bal.input(Balancer::IN_B), Time::ZERO)
        .unwrap();
    c.probe(bal.output(Balancer::OUT_Y1), "y1");
    c.probe(bal.output(Balancer::OUT_Y2), "y2");

    let report = lint(&c, "transition", &window_config(ps(50.0)));
    assert!(report.has(Code::SetupRace));
    assert!(!report.has_errors());
}

#[test]
fn usfq007_fires_on_ndro_setup_race_and_respects_separation() {
    // Racy: set and clock windows overlap.
    let mut c = Circuit::new();
    let s = c.input("s");
    let r = c.input("r");
    let clk = c.input("clk");
    let n = c.add(Ndro::new("n"));
    c.connect_input(s, n.input(Ndro::IN_S), Time::ZERO).unwrap();
    c.connect_input(r, n.input(Ndro::IN_R), Time::ZERO).unwrap();
    c.connect_input(clk, n.input(Ndro::IN_CLK), Time::ZERO)
        .unwrap();
    c.probe(n.output(Ndro::OUT_Q), "q");
    let report = lint(&c, "race", &window_config(ps(20.0)));
    assert!(report.has(Code::SetupRace));

    // Safe: the clock wire delay pushes sampling far past settling.
    let mut c2 = Circuit::new();
    let s2 = c2.input("s");
    let r2 = c2.input("r");
    let clk2 = c2.input("clk");
    let n2 = c2.add(Ndro::new("n"));
    c2.connect_input(s2, n2.input(Ndro::IN_S), Time::ZERO)
        .unwrap();
    c2.connect_input(r2, n2.input(Ndro::IN_R), Time::ZERO)
        .unwrap();
    c2.connect_input(clk2, n2.input(Ndro::IN_CLK), ps(500.0))
        .unwrap();
    c2.probe(n2.output(Ndro::OUT_Q), "q");
    let report2 = lint(&c2, "separated", &window_config(ps(20.0)));
    assert!(!report2.has(Code::SetupRace));
}

#[test]
fn usfq008_fires_when_arrival_exceeds_budget() {
    let mut c = Circuit::new();
    let input = c.input("in");
    let j = c.add(Jtl::new("j"));
    c.connect_input(input, j.input(0), Time::ZERO).unwrap();
    c.probe(j.output(0), "out");

    let config = LintConfig {
        input_window: ps(10.0),
        epoch_budget: Some(ps(5.0)),
        ..LintConfig::default()
    };
    let report = lint(&c, "budget", &config);
    assert!(report.has(Code::BudgetExceeded));
    assert!(report.has_errors());
}

/// A cell that claims a catalog kind but carries the wrong JJ count.
#[derive(Clone)]
struct MisCountedJtl;

impl Component for MisCountedJtl {
    fn name(&self) -> &'static str {
        "bad_jtl"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn jj_count(&self) -> u32 {
        99
    }
    fn on_pulse(&mut self, _port: usize, _now: Time, ctx: &mut Ctx) {
        ctx.emit(0, Time::ZERO);
    }
    fn static_meta(&self) -> StaticMeta {
        StaticMeta::new("jtl", Time::ZERO)
    }
}

#[test]
fn usfq009_fires_on_jj_catalog_mismatch() {
    let mut c = Circuit::new();
    let input = c.input("in");
    let bad = c.add(MisCountedJtl);
    c.connect_input(input, bad.input(0), Time::ZERO).unwrap();
    c.probe(bad.output(0), "out");

    let report = lint(&c, "jj", &LintConfig::default());
    assert!(report.has(Code::JjMismatch));
    assert!(report.has_errors());
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::JjMismatch)
        .unwrap();
    assert!(diag.message.contains("99"));
}

#[test]
fn probe_windows_track_wire_and_cell_delays() {
    let mut c = Circuit::new();
    let input = c.input("in");
    let j = c.add(Jtl::new("j")); // catalog t_jtl = 3 ps
    c.connect_input(input, j.input(0), ps(2.0)).unwrap();
    c.probe(j.output(0), "out");

    let windows = probe_windows(&c, &window_config(ps(10.0)));
    assert_eq!(
        windows,
        vec![("out".to_string(), Some((ps(5.0), ps(15.0))))]
    );
}

/// A sink that counts pulses and declares its counting capacity, like
/// the stream-to-RL integrator does.
#[derive(Clone)]
struct CountingSink {
    capacity: u64,
}

impl Component for CountingSink {
    fn name(&self) -> &'static str {
        "ctr"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn jj_count(&self) -> u32 {
        4
    }
    fn on_pulse(&mut self, _port: usize, _now: Time, _ctx: &mut Ctx) {}
    fn static_meta(&self) -> StaticMeta {
        StaticMeta::new("ctr", Time::ZERO).with_counting_capacity(self.capacity)
    }
}

#[test]
fn usfq011_fires_on_race_wire_into_stream_port() {
    // FA emits a race-logic arrival time; a TFF divides a pulse count.
    let mut c = Circuit::new();
    let a = c.input("a");
    let b = c.input("b");
    let rst = c.input("rst");
    let fa = c.add(FirstArrival::new("fa"));
    c.connect_input(a, fa.input(FirstArrival::IN_A), Time::ZERO)
        .unwrap();
    c.connect_input(b, fa.input(FirstArrival::IN_B), Time::ZERO)
        .unwrap();
    c.connect_input(rst, fa.input(FirstArrival::IN_RST), Time::ZERO)
        .unwrap();
    let t = c.add(Tff::new("t"));
    c.connect(fa.output(FirstArrival::OUT), t.input(Tff::IN), Time::ZERO)
        .unwrap();
    c.probe(t.output(Tff::OUT), "out");

    let report = lint(&c, "race-into-stream", &LintConfig::default());
    assert!(report.has(Code::DomainMismatch));
    assert!(report.has_errors());
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::DomainMismatch)
        .unwrap();
    assert_eq!(diag.component.as_deref(), Some("t"));
    assert!(diag.message.contains("pulse-stream"));
    assert!(diag.message.contains("race-logic"));

    // The same wire into a domain-agnostic JTL is fine.
    let mut c2 = Circuit::new();
    let a2 = c2.input("a");
    let b2 = c2.input("b");
    let rst2 = c2.input("rst");
    let fa2 = c2.add(FirstArrival::new("fa"));
    c2.connect_input(a2, fa2.input(FirstArrival::IN_A), Time::ZERO)
        .unwrap();
    c2.connect_input(b2, fa2.input(FirstArrival::IN_B), Time::ZERO)
        .unwrap();
    c2.connect_input(rst2, fa2.input(FirstArrival::IN_RST), Time::ZERO)
        .unwrap();
    let j = c2.add(Jtl::new("j"));
    c2.connect(fa2.output(FirstArrival::OUT), j.input(0), Time::ZERO)
        .unwrap();
    c2.probe(j.output(0), "out");
    let report2 = lint(&c2, "race-into-jtl", &LintConfig::default());
    assert!(!report2.has(Code::DomainMismatch));
}

#[test]
fn usfq012_fires_when_count_bound_exceeds_capacity() {
    let build = |capacity| {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let m = c.add(Merger::with_window("m", Time::ZERO));
        c.connect_input(a, m.input(Merger::IN_A), Time::ZERO)
            .unwrap();
        c.connect_input(b, m.input(Merger::IN_B), Time::ZERO)
            .unwrap();
        let ctr = c.add(CountingSink { capacity });
        c.connect(m.output(Merger::OUT), ctr.input(0), Time::ZERO)
            .unwrap();
        c.probe(ctr.output(0), "out");
        c
    };
    let config = LintConfig {
        epoch_pulse_capacity: Some(2),
        ..LintConfig::default()
    };

    // Two inputs of up to 2 pulses each merge into 4 ≥ capacity 2.
    let report = lint(&build(2), "overflow", &config);
    assert!(report.has(Code::CountOverflow));
    assert!(!report.has_errors(), "USFQ012 is a warning");
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::CountOverflow)
        .unwrap();
    assert_eq!(diag.component.as_deref(), Some("ctr"));
    assert!(diag.message.contains('4') && diag.message.contains('2'));

    // A large enough counter absorbs the worst case.
    let report2 = lint(&build(4), "fits", &config);
    assert!(!report2.has(Code::CountOverflow));

    // Unknown input counts never claim an overflow.
    let report3 = lint(&build(2), "unknown", &LintConfig::default());
    assert!(!report3.has(Code::CountOverflow));
}

#[test]
fn usfq013_fires_on_provably_dead_toggle() {
    let build = || {
        let mut c = Circuit::new();
        let a = c.input("a");
        let t = c.add(Tff::new("t"));
        c.connect_input(a, t.input(Tff::IN), Time::ZERO).unwrap();
        c.probe(t.output(Tff::OUT), "out");
        c
    };

    // At most one pulse per epoch: a TFF halves it to zero.
    let config = LintConfig {
        epoch_pulse_capacity: Some(1),
        ..LintConfig::default()
    };
    let report = lint(&build(), "dead-toggle", &config);
    assert!(report.has(Code::DeadCell));
    assert!(!report.has_errors(), "USFQ013 is a warning");
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::DeadCell)
        .unwrap();
    assert_eq!(diag.component.as_deref(), Some("t"));

    // With two pulses the toggle emits one: alive.
    let config2 = LintConfig {
        epoch_pulse_capacity: Some(2),
        ..LintConfig::default()
    };
    let report2 = lint(&build(), "live-toggle", &config2);
    assert!(!report2.has(Code::DeadCell));
}

#[test]
fn usfq014_fires_when_no_output_is_consumed() {
    let build = |probe_tail: bool| {
        let mut c = Circuit::new();
        let a = c.input("a");
        let spl = c.add(Splitter::new("spl"));
        c.connect_input(a, spl.input(Splitter::IN), Time::ZERO)
            .unwrap();
        let j = c.add(Jtl::new("j"));
        let tail = c.add(Jtl::new("tail"));
        c.connect(spl.output(Splitter::OUT_A), j.input(0), Time::ZERO)
            .unwrap();
        c.connect(spl.output(Splitter::OUT_B), tail.input(0), Time::ZERO)
            .unwrap();
        c.probe(j.output(0), "out");
        if probe_tail {
            c.probe(tail.output(0), "tail");
        }
        c
    };

    let report = lint(&build(false), "discarded", &LintConfig::default());
    assert!(report.has(Code::UnconsumedOutput));
    assert!(!report.has_errors(), "USFQ014 is a warning");
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::UnconsumedOutput)
        .unwrap();
    assert_eq!(diag.component.as_deref(), Some("tail"));

    // A probe counts as consumption.
    let report2 = lint(&build(true), "probed", &LintConfig::default());
    assert!(!report2.has(Code::UnconsumedOutput));
}

#[test]
fn usfq015_fires_when_race_arrival_passes_epoch_end() {
    let build = || {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let rst = c.input("rst");
        let fa = c.add(FirstArrival::new("fa"));
        // The long wire pushes IN_A's window to [500, 510] ps.
        c.connect_input(a, fa.input(FirstArrival::IN_A), ps(500.0))
            .unwrap();
        c.connect_input(b, fa.input(FirstArrival::IN_B), Time::ZERO)
            .unwrap();
        c.connect_input(rst, fa.input(FirstArrival::IN_RST), Time::ZERO)
            .unwrap();
        c.probe(fa.output(FirstArrival::OUT), "out");
        c
    };

    let config = LintConfig {
        input_window: ps(10.0),
        rl_epoch_end: Some(ps(100.0)),
        ..LintConfig::default()
    };
    let report = lint(&build(), "late-race", &config);
    assert!(report.has(Code::RacePastEpoch));
    assert!(!report.has_errors(), "USFQ015 is a warning");
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::RacePastEpoch)
        .unwrap();
    assert_eq!(diag.component.as_deref(), Some("fa"));

    // A generous epoch end absorbs the delay; no epoch end disables
    // the check entirely.
    let config2 = LintConfig {
        input_window: ps(10.0),
        rl_epoch_end: Some(ps(1000.0)),
        ..LintConfig::default()
    };
    assert!(!lint(&build(), "roomy", &config2).has(Code::RacePastEpoch));
    let config3 = LintConfig {
        input_window: ps(10.0),
        ..LintConfig::default()
    };
    assert!(!lint(&build(), "unset", &config3).has(Code::RacePastEpoch));
}

#[test]
fn usfq016_fires_on_stateful_fanout_into_conflicting_domains() {
    // A DFF's output is encoding-agnostic, so USFQ011 cannot object —
    // but splitting it into a race consumer AND a stream consumer means
    // one of them misreads the stored state.
    let mut c = Circuit::new();
    let s = c.input("s");
    let r = c.input("r");
    let b = c.input("b");
    let rst = c.input("rst");
    let d = c.add(Dff::new("d"));
    c.connect_input(s, d.input(Dff::IN_S), Time::ZERO).unwrap();
    c.connect_input(r, d.input(Dff::IN_R), Time::ZERO).unwrap();
    let spl = c.add(Splitter::new("spl"));
    c.connect(d.output(Dff::OUT_Q), spl.input(Splitter::IN), Time::ZERO)
        .unwrap();
    let fa = c.add(FirstArrival::new("fa"));
    c.connect(
        spl.output(Splitter::OUT_A),
        fa.input(FirstArrival::IN_A),
        Time::ZERO,
    )
    .unwrap();
    c.connect_input(b, fa.input(FirstArrival::IN_B), Time::ZERO)
        .unwrap();
    c.connect_input(rst, fa.input(FirstArrival::IN_RST), Time::ZERO)
        .unwrap();
    let t = c.add(Tff::new("t"));
    c.connect(spl.output(Splitter::OUT_B), t.input(Tff::IN), Time::ZERO)
        .unwrap();
    c.probe(fa.output(FirstArrival::OUT), "race");
    c.probe(t.output(Tff::OUT), "count");

    let report = lint(&c, "conflicted", &LintConfig::default());
    assert!(report.has(Code::ConflictingFanout));
    assert!(report.has_errors());
    assert!(
        !report.has(Code::DomainMismatch),
        "an agnostic output must not trip USFQ011"
    );
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::ConflictingFanout)
        .unwrap();
    assert_eq!(diag.component.as_deref(), Some("d"));

    // Fanning the same DFF into two stream consumers is consistent.
    let mut c2 = Circuit::new();
    let s2 = c2.input("s");
    let r2 = c2.input("r");
    let d2 = c2.add(Dff::new("d"));
    c2.connect_input(s2, d2.input(Dff::IN_S), Time::ZERO)
        .unwrap();
    c2.connect_input(r2, d2.input(Dff::IN_R), Time::ZERO)
        .unwrap();
    let spl2 = c2.add(Splitter::new("spl"));
    c2.connect(d2.output(Dff::OUT_Q), spl2.input(Splitter::IN), Time::ZERO)
        .unwrap();
    let ta = c2.add(Tff::new("ta"));
    let tb = c2.add(Tff::new("tb"));
    c2.connect(spl2.output(Splitter::OUT_A), ta.input(Tff::IN), Time::ZERO)
        .unwrap();
    c2.connect(spl2.output(Splitter::OUT_B), tb.input(Tff::IN), Time::ZERO)
        .unwrap();
    c2.probe(ta.output(Tff::OUT), "a");
    c2.probe(tb.output(Tff::OUT), "b");
    let report2 = lint(&c2, "consistent", &LintConfig::default());
    assert!(!report2.has(Code::ConflictingFanout));
}

#[test]
fn waivers_downgrade_matching_findings_to_info() {
    let mut c = Circuit::new();
    let a = c.input("a");
    let b = c.input("b");
    let m = c.add(Merger::new("m"));
    c.connect_input(a, m.input(Merger::IN_A), Time::ZERO)
        .unwrap();
    c.connect_input(b, m.input(Merger::IN_B), Time::ZERO)
        .unwrap();
    c.probe(m.output(Merger::OUT), "out");

    let unwaived = lint(&c, "loud", &window_config(ps(100.0)));
    assert_eq!(unwaived.worst_severity(), Some(Severity::Warning));

    let config = LintConfig {
        input_window: ps(100.0),
        waivers: vec![("USFQ006".to_string(), "m".to_string())],
        ..LintConfig::default()
    };
    let waived = lint(&c, "quiet", &config);
    assert_eq!(waived.worst_severity(), Some(Severity::Info));
    let diag = &waived.diagnostics[0];
    assert_eq!(diag.code, Code::MergerCollision);
    assert!(diag.is_waived());
    assert!(diag.message.contains("[waived]"));

    // A waiver for a different component leaves the finding alone.
    let config2 = LintConfig {
        input_window: ps(100.0),
        waivers: vec![("USFQ006".to_string(), "other".to_string())],
        ..LintConfig::default()
    };
    let kept = lint(&c, "still-loud", &config2);
    assert_eq!(kept.worst_severity(), Some(Severity::Warning));
}

#[test]
fn encoding_checks_are_silent_on_the_catalogue() {
    for netlist in usfq_core::netlists::shipped_netlists() {
        let report = lint_netlist(&netlist);
        for code in [
            Code::DomainMismatch,
            Code::CountOverflow,
            Code::DeadCell,
            Code::UnconsumedOutput,
            Code::RacePastEpoch,
            Code::ConflictingFanout,
        ] {
            assert_eq!(
                report.count(code),
                0,
                "`{}` unexpectedly fires {code} ({}):\n{}",
                netlist.name,
                code.as_str(),
                report.render_text()
            );
        }
    }
}

#[test]
fn shipped_netlists_pass_deny_warnings() {
    // Every expected warning is covered by a waiver, so a strict run
    // sees nothing above Info — the CI lint gate relies on this.
    for netlist in usfq_core::netlists::shipped_netlists() {
        let report = lint_netlist(&netlist);
        assert!(
            report.worst_severity() <= Some(Severity::Info),
            "`{}` has unwaived findings:\n{}",
            netlist.name,
            report.render_text()
        );
    }
}

#[test]
fn shipped_netlists_are_error_free() {
    let catalogue = usfq_core::netlists::shipped_netlists();
    assert!(!catalogue.is_empty());
    for netlist in &catalogue {
        let report = lint_netlist(netlist);
        assert!(
            !report.has_errors(),
            "shipped netlist `{}` has lint errors:\n{}",
            netlist.name,
            report.render_text()
        );
    }
}
