//! Soundness of the static timing pass: for random acyclic pulse
//! circuits and random single-pulse stimuli inside the declared input
//! window, every *simulated* probe arrival must fall inside the
//! analyzer's static `[min, max]` window for that probe.

use usfq_cells::{Jtl, Merger, Splitter, Tff};
use usfq_lint::{probe_windows, LintConfig};
use usfq_sim::component::Buffer;
use usfq_sim::{Circuit, NodeRef, Simulator, Time};

const INPUT_WINDOW_PS: u64 = 40;

/// Deterministic splitmix64 stream — the test needs reproducible
/// randomness, not quality.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Builds a random single-fanout DAG, stimulates it with one random
/// pulse per input, and checks every arrival against the static window.
fn check_random_dag(seed: u64) {
    let mut rng = Rng(seed);
    let mut c = Circuit::new();

    // Free output taps, consumed at most once each (single fanout).
    let mut taps: Vec<NodeRef> = Vec::new();
    let n_inputs = 2 + rng.below(3) as usize;
    let mut inputs = Vec::new();
    for i in 0..n_inputs {
        let input = c.input(format!("in{i}"));
        let front = c.add(Jtl::new(format!("front{i}")));
        c.connect_input(input, front.input(0), Time::from_ps(rng.below(6) as f64))
            .unwrap();
        taps.push(front.output(0));
        inputs.push(input);
    }

    let n_cells = 3 + rng.below(8) as usize;
    for k in 0..n_cells {
        let delay = Time::from_ps(rng.below(6) as f64);
        match rng.below(4) {
            0 => {
                let src = taps.swap_remove(rng.below(taps.len() as u64) as usize);
                let j = c.add(Jtl::new(format!("jtl{k}")));
                c.connect(src, j.input(0), delay).unwrap();
                taps.push(j.output(0));
            }
            1 => {
                let src = taps.swap_remove(rng.below(taps.len() as u64) as usize);
                let s = c.add(Splitter::new(format!("spl{k}")));
                c.connect(src, s.input(Splitter::IN), delay).unwrap();
                taps.push(s.output(Splitter::OUT_A));
                taps.push(s.output(Splitter::OUT_B));
            }
            2 if taps.len() >= 2 => {
                let a = taps.swap_remove(rng.below(taps.len() as u64) as usize);
                let b = taps.swap_remove(rng.below(taps.len() as u64) as usize);
                let m = c.add(Merger::with_window(format!("mrg{k}"), Time::ZERO));
                c.connect(a, m.input(Merger::IN_A), delay).unwrap();
                c.connect(b, m.input(Merger::IN_B), Time::from_ps(rng.below(6) as f64))
                    .unwrap();
                taps.push(m.output(Merger::OUT));
            }
            3 => {
                let src = taps.swap_remove(rng.below(taps.len() as u64) as usize);
                let t = c.add(Tff::new(format!("tff{k}")));
                c.connect(src, t.input(Tff::IN), delay).unwrap();
                taps.push(t.output(Tff::OUT));
            }
            _ => {
                let src = taps.swap_remove(rng.below(taps.len() as u64) as usize);
                let b = c.add(Buffer::new(format!("buf{k}"), delay));
                c.connect(src, b.input(0), Time::ZERO).unwrap();
                taps.push(b.output(0));
            }
        }
    }
    for (i, tap) in taps.iter().enumerate() {
        c.probe(*tap, format!("p{i}"));
    }

    let config = LintConfig {
        input_window: Time::from_ps(INPUT_WINDOW_PS as f64),
        ..LintConfig::default()
    };
    let windows = probe_windows(&c, &config);

    let mut sim = Simulator::new(c);
    for &input in &inputs {
        // "At most one pulse per input": sometimes stay silent.
        if rng.below(4) == 0 {
            continue;
        }
        let t = Time::from_ps(rng.below(INPUT_WINDOW_PS + 1) as f64);
        sim.schedule_input(input, t).unwrap();
    }
    sim.run().unwrap();

    for (probe, _) in sim.circuit().probe_taps().collect::<Vec<_>>() {
        let name = sim.circuit().probe_name(probe).unwrap().to_string();
        let (_, window) = windows
            .iter()
            .find(|(n, _)| *n == name)
            .expect("every probe has a static window entry");
        for &arrival in sim.probe_times(probe) {
            let (min, max) = window.unwrap_or_else(|| {
                panic!("seed {seed}: probe `{name}` fired but the analyzer said it never could")
            });
            assert!(
                min <= arrival && arrival <= max,
                "seed {seed}: probe `{name}` pulsed at {:.1} ps, outside \
                 the static window [{:.1}, {:.1}] ps",
                arrival.as_ps(),
                min.as_ps(),
                max.as_ps()
            );
        }
    }
}

#[test]
fn seeded_random_dags_are_sound() {
    for i in 0..64u64 {
        check_random_dag(i.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0xdead_beef);
    }
}

#[cfg(not(miri))]
mod prop {
    use proptest::prelude::*;

    proptest! {
        /// The same soundness property under proptest's own exploration.
        #[test]
        fn simulated_arrivals_stay_in_static_windows(seed in any::<u64>()) {
            super::check_random_dag(seed);
        }
    }
}
