//! The `--fix` timing-closure contract, pinned end to end:
//!
//! 1. Every shipped netlist, with its *timing* waivers stripped (so
//!    acknowledged hazards become actionable again), repairs to a clean
//!    `USFQ001`–`USFQ016` fixpoint within the iteration bound — at most
//!    with an honestly-reported epoch extension.
//! 2. Fix directives round-trip through SARIF: extracting them from the
//!    analyzer's own SARIF output and re-applying yields a circuit
//!    byte-identical (DOT rendering) to applying the in-memory fixes.
//! 3. Repairing never *introduces* findings: every code above Info in
//!    the repaired netlist's report already fired before the repair.
//! 4. A repaired netlist actually simulates: single-pulse-per-input
//!    stimulus inside the static envelope runs without sanitizer
//!    violations (the dynamic half of the soundness contract).

use usfq_lint::{
    actionable_fixes, fix_to_fixpoint, fixes_from_sarif, lint, lint_config_for, to_sarif, Code,
    FixOptions, LintConfig, Severity,
};
use usfq_sim::{Circuit, SanitizerConfig, Simulator, Time};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// `USFQ017`/`USFQ018` are the closure layer's own outputs; the
/// fixpoint promise covers the pre-existing check families.
fn original_codes(report: &usfq_lint::LintReport) -> Vec<Code> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity > Severity::Info)
        .filter(|d| !matches!(d.code, Code::CriticalPath | Code::SlackDeficit))
        .map(|d| d.code)
        .collect()
}

#[test]
fn catalogue_repairs_to_a_clean_fixpoint_without_timing_waivers() {
    for netlist in usfq_core::netlists::shipped_netlists() {
        let cfg = lint_config_for(&netlist).without_timing_waivers();
        let (fixed, outcome) =
            fix_to_fixpoint(&netlist.circuit, netlist.name, &cfg, &FixOptions::default());
        assert!(
            outcome.converged,
            "`{}` did not converge after {} iteration(s); irreducible:\n{}",
            netlist.name,
            outcome.iterations,
            outcome
                .irreducible
                .iter()
                .map(|d| format!("  {d}\n"))
                .collect::<String>()
        );
        assert!(original_codes(&outcome.report).is_empty());
        // Repairs are additive: components only ever get added.
        assert!(fixed.num_components() >= netlist.circuit.num_components());
        // Area accounting matches the applied repairs.
        if outcome.applied.is_empty() {
            assert_eq!(outcome.added_jj, 0, "`{}`", netlist.name);
            assert_eq!(outcome.iterations, 0, "`{}`", netlist.name);
        } else {
            assert!(outcome.added_jj > 0, "`{}`", netlist.name);
        }
    }
}

#[test]
fn strict_budget_reports_an_irreducible_core_when_extension_is_needed() {
    let opts = FixOptions {
        allow_budget_extension: false,
        ..FixOptions::default()
    };
    let mut any_extension = false;
    for netlist in usfq_core::netlists::shipped_netlists() {
        let cfg = lint_config_for(&netlist).without_timing_waivers();
        let (_, strict) = fix_to_fixpoint(&netlist.circuit, netlist.name, &cfg, &opts);
        let (_, relaxed) =
            fix_to_fixpoint(&netlist.circuit, netlist.name, &cfg, &FixOptions::default());
        assert!(relaxed.converged, "`{}`", netlist.name);
        if relaxed.extended_budget.is_some() {
            any_extension = true;
            // The same netlist under --strict-budget must surface the
            // envelope findings instead of silently extending.
            assert!(!strict.converged, "`{}`", netlist.name);
            assert!(
                strict.irreducible.iter().all(|d| matches!(
                    d.code,
                    Code::BudgetExceeded | Code::RacePastEpoch | Code::SlackDeficit
                )),
                "`{}`: non-envelope findings in the strict core:\n{}",
                netlist.name,
                strict
                    .irreducible
                    .iter()
                    .map(|d| format!("  {d}\n"))
                    .collect::<String>()
            );
        }
    }
    // The deep netlists (dpu-monolithic, structural-fir) genuinely need
    // an extension; if none does, this test is vacuous and wrong.
    assert!(
        any_extension,
        "no catalogue netlist exercised the extension path"
    );
}

#[test]
fn sarif_fixes_reapply_to_byte_identical_netlists() {
    for netlist in usfq_core::netlists::shipped_netlists() {
        let cfg = lint_config_for(&netlist).without_timing_waivers();
        let report = lint(&netlist.circuit, netlist.name, &cfg);
        let fixes = actionable_fixes(&report);
        if fixes.is_empty() {
            continue;
        }

        let mut direct = netlist.circuit.clone();
        for fix in &fixes {
            fix.apply(&mut direct).unwrap();
        }

        // Round-trip through SARIF. The log carries one fix per finding
        // (pre-dedup), so re-extract and dedupe through the same path a
        // external tool would: parse, then apply the deduped set.
        let sarif = to_sarif(std::slice::from_ref(&report));
        let parsed = fixes_from_sarif(&sarif);
        for fix in &fixes {
            assert!(
                parsed.contains(fix),
                "`{}`: fix `{}` lost in SARIF",
                netlist.name,
                fix.to_directive()
            );
        }
        let mut via_sarif = netlist.circuit.clone();
        for fix in &fixes {
            let round_tripped = parsed.iter().find(|p| *p == fix).unwrap();
            round_tripped.apply(&mut via_sarif).unwrap();
        }
        assert_eq!(
            direct.to_dot(netlist.name),
            via_sarif.to_dot(netlist.name),
            "`{}`: SARIF round-trip diverged",
            netlist.name
        );
    }
}

#[test]
fn repairing_never_introduces_new_finding_codes() {
    for netlist in usfq_core::netlists::shipped_netlists() {
        let cfg = lint_config_for(&netlist).without_timing_waivers();
        let before = lint(&netlist.circuit, netlist.name, &cfg);
        let before_codes = original_codes(&before);
        let (_, outcome) =
            fix_to_fixpoint(&netlist.circuit, netlist.name, &cfg, &FixOptions::default());
        for code in original_codes(&outcome.report) {
            assert!(
                before_codes.contains(&code),
                "`{}`: repair introduced {}",
                netlist.name,
                code.as_str()
            );
        }
    }
}

/// The repaired netlist must actually work: drive every input with one
/// pulse inside the static envelope (the assumption the analyzer is
/// sound under) and let the sanitizer check every delivered pulse.
#[test]
fn repaired_netlists_simulate_without_sanitizer_violations() {
    for netlist in usfq_core::netlists::shipped_netlists() {
        let cfg = lint_config_for(&netlist).without_timing_waivers();
        let (fixed, outcome) =
            fix_to_fixpoint(&netlist.circuit, netlist.name, &cfg, &FixOptions::default());
        assert!(outcome.converged, "`{}`", netlist.name);
        let window = cfg.input_window.as_fs();
        let mut seed = 0xF1C5_0000 ^ netlist.name.len() as u64;
        for trial in 0..4u64 {
            let mut sim = Simulator::new(fixed.clone());
            sim.enable_sanitizer(SanitizerConfig::default());
            let inputs: Vec<_> = fixed.inputs().map(|(id, _)| id).collect();
            for input in inputs {
                let t = if window == 0 || trial == 0 {
                    Time::ZERO
                } else {
                    Time::from_fs(xorshift(&mut seed) % (window + 1))
                };
                sim.schedule_input(input, t).unwrap();
            }
            sim.run().unwrap();
            let report = sim.sanitizer_report().expect("sanitizer was enabled");
            assert!(
                report.violations.is_empty(),
                "`{}` trial {trial}: {} sanitizer violation(s), first: {:?}",
                netlist.name,
                report.violations.len(),
                report.violations.first()
            );
        }
    }
}

/// Random pseudo-fabrics: layered circuits with deliberate fan-out and
/// hazard defects must also converge within the default bound. This is
/// the deterministic twin of the proptest below.
fn random_fabric(seed: u64, layers: usize, width: usize) -> Circuit {
    use usfq_cells::interconnect::{Jtl, Merger};
    let mut c = Circuit::new();
    let mut state = seed | 1;
    let mut all: Vec<(usfq_sim::NodeRef, usfq_sim::CompId)> = Vec::new();
    let mut prev: Vec<usfq_sim::NodeRef> = Vec::new();
    for w in 0..width {
        let input = c.input(format!("in{w}"));
        let j = c.add(Jtl::new(format!("l0_j{w}")));
        c.connect_input(
            input,
            j.input(0),
            Time::from_fs(xorshift(&mut state) % 5_000),
        )
        .unwrap();
        all.push((j.output(0), j.id()));
        prev.push(j.output(0));
    }
    for l in 1..layers {
        let mut next = Vec::new();
        for w in 0..width {
            let pick = |state: &mut u64| (xorshift(state) % prev.len() as u64) as usize;
            if xorshift(&mut state) % 3 == 0 {
                // A merger fed by two (possibly colliding) sources.
                let m = c.add(Merger::new(format!("l{l}_m{w}")));
                let (a, b) = (pick(&mut state), pick(&mut state));
                let d1 = Time::from_fs(xorshift(&mut state) % 5_000);
                let d2 = Time::from_fs(xorshift(&mut state) % 5_000);
                c.connect(prev[a], m.input(0), d1).unwrap();
                c.connect(prev[b], m.input(1), d2).unwrap();
                all.push((m.output(0), m.id()));
                next.push(m.output(0));
            } else {
                let j = c.add(Jtl::new(format!("l{l}_j{w}")));
                let p = pick(&mut state);
                let d = Time::from_fs(xorshift(&mut state) % 5_000);
                c.connect(prev[p], j.input(0), d).unwrap();
                all.push((j.output(0), j.id()));
                next.push(j.output(0));
            }
        }
        prev = next;
    }
    // Probe every output nothing consumes, so the generator seeds only
    // defects the repair engine can actually discharge (fan-out and
    // hazards), not USFQ014 dead-end cells.
    for (i, (node, comp)) in all.iter().enumerate() {
        if c.net_fanout(*comp, 0).unwrap() == 0 {
            c.probe(*node, format!("p{i}"));
        }
    }
    c
}

fn assert_fabric_converges(seed: u64, layers: usize, width: usize) {
    let c = random_fabric(seed, layers, width);
    let cfg = LintConfig {
        input_window: Time::from_ps(25.0),
        epoch_budget: Some(Time::from_ns(1.0)),
        ..LintConfig::default()
    };
    let name = format!("fabric-{seed:x}");
    let (_, outcome) = fix_to_fixpoint(&c, &name, &cfg, &FixOptions::default());
    assert!(
        outcome.converged,
        "{name} ({layers}x{width}) did not converge in {} iteration(s):\n{}",
        outcome.iterations,
        outcome
            .irreducible
            .iter()
            .map(|d| format!("  {d}\n"))
            .collect::<String>()
    );
    assert!(outcome.iterations <= FixOptions::default().max_iterations);
}

#[test]
fn random_fabrics_converge_within_the_iteration_bound() {
    for seed in [0xFAB0, 0xFAB1, 0xFAB2, 0xFAB3] {
        assert_fabric_converges(seed, 6, 8);
    }
}

// Property form of the same claim. Note: the offline build stubs out
// proptest (the macro expands to nothing), so the deterministic test
// above carries the coverage there; under the real dependency this
// explores the seed/shape space.
#[cfg(test)]
mod props {
    // Unused when the proptest macro is stubbed out offline.
    #[allow(unused_imports)]
    use super::*;
    #[allow(unused_imports)]
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn arbitrary_fabrics_repair_to_closure(
            seed in any::<u64>(),
            layers in 2usize..7,
            width in 2usize..9,
        ) {
            assert_fabric_converges(seed, layers, width);
        }
    }
}
