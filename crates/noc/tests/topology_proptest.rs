//! Satellite property: **every** generated topology (random shape,
//! size, seed) extracts to a fully input-connected [`CircuitGraph`],
//! lints without errors under its declared envelope, and routes a
//! permutation pattern loss-free through the pulse-level simulator.
//!
//! The fixed-case tests pin the same three properties on the shipped
//! scenario sizes so the contract is enforced even where the proptest
//! dependency is stubbed out.

use proptest::prelude::*;
use usfq_noc::{decode, lint_fabric, plan, simulate, FlitGeometry, Pattern, SimConfig, Topology};
use usfq_sim::CircuitGraph;

/// The three properties the satellite task names, for one topology.
fn check_topology(topology: Topology, seed: u64) {
    let geometry = FlitGeometry::with_bits(4).expect("4-bit flits");
    let fabric = topology.build(geometry);

    // 1. Connected: every cell is reachable from some external input.
    let graph = CircuitGraph::build(&fabric.circuit);
    let reachable = graph.reachable_from_inputs();
    assert_eq!(graph.len(), reachable.len());
    assert!(
        reachable.iter().all(|&r| r),
        "{}: unreachable cells in the extracted graph",
        topology.label()
    );

    // 2. Plans a permutation and lints clean under the schedule's
    //    actual horizon (waivers declared in the fabric's config).
    let flows = usfq_noc::generate(
        Pattern::Permutation,
        topology.nodes(),
        1,
        geometry.epoch.n_max(),
        seed,
    );
    let schedule = plan(&fabric, &flows);
    let report = lint_fabric(&fabric, schedule.makespan);
    assert!(
        !report.has_errors() && report.warning_count() == 0,
        "{}: lint not `--deny-warnings` clean\n{}",
        topology.label(),
        report.render_text()
    );
    // The declared waivers must actually be doing work: the expected
    // hazard classes are reported (as waived Info), never hidden.
    assert!(
        report
            .diagnostics
            .iter()
            .any(usfq_lint::Diagnostic::is_waived),
        "{}: expected waived USFQ006/USFQ007 findings",
        topology.label()
    );

    // 3. Loss-free: every flit arrives complete, inside its window,
    //    with zero merger collisions — under the sanitizer.
    let outcome = simulate(
        &fabric,
        &schedule,
        SimConfig {
            sanitize: true,
            ..SimConfig::reference()
        },
    )
    .expect("schedule simulates");
    assert!(
        outcome.anomalies.is_empty(),
        "{}: anomalies {:?}",
        topology.label(),
        outcome.anomalies
    );
    for d in decode(&fabric, &schedule, &outcome) {
        assert_eq!(
            d.arrived,
            d.expected,
            "{}: flow {} lost pulses",
            topology.label(),
            d.flow
        );
    }
    // Total arrivals equal total payload: nothing strayed outside a
    // delivery window either.
    let total: usize = outcome.probe_times.iter().map(Vec::len).sum();
    let injected: u64 = flows.iter().map(|f| f.payload).sum();
    assert_eq!(total as u64, injected);
}

#[test]
fn mesh_3x3_routes_permutations_loss_free() {
    check_topology(Topology::Mesh { k: 3 }, 11);
}

#[test]
fn mesh_4x4_routes_permutations_loss_free() {
    check_topology(Topology::Mesh { k: 4 }, 12);
}

#[test]
fn torus_4x4_routes_permutations_loss_free() {
    check_topology(Topology::Torus { k: 4 }, 13);
}

#[test]
fn big_switch_8_routes_permutations_loss_free() {
    check_topology(Topology::BigSwitch { n: 8 }, 14);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(16)))]

    /// Random shape × size × seed: connected, lint-clean, loss-free.
    #[test]
    fn any_topology_is_connected_lint_clean_and_loss_free(
        shape in 0usize..3,
        k in 2usize..5,
        n in 2usize..10,
        seed in 0u64..u64::MAX,
    ) {
        let topology = match shape {
            0 => Topology::Mesh { k },
            1 => Topology::Torus { k },
            _ => Topology::BigSwitch { n },
        };
        check_topology(topology, seed);
    }
}
