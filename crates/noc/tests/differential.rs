//! Routed-traffic engine differential — the acceptance contract: NoC
//! simulation under `{2 shards, wheel, burst}` is byte-identical to
//! `{1 shard, heap, pulse}`, across every topology × pattern pair,
//! with and without the sanitizer. `peak_pending` and violation
//! *order* (the two documented divergences) are excluded from the
//! fingerprint by construction ([`usfq_noc::NocOutcome`]).
//!
//! `env_config_matches_reference` is the test the CI matrix steers:
//! it reads `USFQ_SCHED` / `USFQ_BURST` / `USFQ_SHARDS` from the
//! environment, so each matrix leg genuinely exercises a different
//! engine configuration against the same fixed reference.

use usfq_noc::{plan, simulate, simulate_env, FlitGeometry, Pattern, SimConfig, Topology};
use usfq_sim::Sched;

fn scenarios() -> Vec<(Topology, Pattern, u64)> {
    let mut v = Vec::new();
    for topology in [
        Topology::Mesh { k: 3 },
        Topology::Torus { k: 3 },
        Topology::BigSwitch { n: 6 },
    ] {
        for (i, pattern) in Pattern::all().into_iter().enumerate() {
            v.push((topology, pattern, 40 + i as u64));
        }
    }
    v
}

/// The acceptance corner: `{2 shards, wheel, burst}` equals
/// `{1 shard, heap, pulse}` byte-for-byte.
#[test]
fn sharded_wheel_burst_equals_sequential_heap_pulse() {
    for (topology, pattern, seed) in scenarios() {
        for sanitize in [false, true] {
            let geometry = FlitGeometry::with_bits(4).unwrap();
            let fabric = topology.build(geometry);
            let flows =
                usfq_noc::generate(pattern, topology.nodes(), 2, geometry.epoch.n_max(), seed);
            let schedule = plan(&fabric, &flows);
            let reference = simulate(
                &fabric,
                &schedule,
                SimConfig {
                    sanitize,
                    ..SimConfig::reference()
                },
            )
            .unwrap();
            let subject = simulate(
                &fabric,
                &schedule,
                SimConfig {
                    sanitize,
                    ..SimConfig::subject()
                },
            )
            .unwrap();
            assert_eq!(
                reference,
                subject,
                "{} × {} (seed {seed}, sanitize {sanitize}) diverged",
                topology.label(),
                pattern.label()
            );
        }
    }
}

/// Every corner of the small configuration cube agrees with the
/// reference — the cube the CI matrix walks via the env test below.
#[test]
fn full_config_cube_agrees_on_routed_traffic() {
    let topology = Topology::Mesh { k: 3 };
    let geometry = FlitGeometry::with_bits(4).unwrap();
    let fabric = topology.build(geometry);
    let flows = usfq_noc::generate(
        Pattern::Hotspot,
        topology.nodes(),
        2,
        geometry.epoch.n_max(),
        7,
    );
    let schedule = plan(&fabric, &flows);
    let reference = simulate(&fabric, &schedule, SimConfig::reference()).unwrap();
    for shards in [1, 2, 4] {
        for sched in [Sched::Heap, Sched::Wheel] {
            for burst in [false, true] {
                let outcome = simulate(
                    &fabric,
                    &schedule,
                    SimConfig {
                        shards,
                        sched,
                        burst,
                        sanitize: false,
                    },
                )
                .unwrap();
                assert_eq!(
                    reference, outcome,
                    "{shards} shards, {sched:?}, burst {burst} diverged"
                );
            }
        }
    }
}

/// The env-driven run (whatever `USFQ_SHARDS`/`USFQ_SCHED`/
/// `USFQ_BURST` say — defaults included) matches the fixed reference.
#[test]
fn env_config_matches_reference() {
    for (topology, pattern, seed) in scenarios() {
        let geometry = FlitGeometry::with_bits(4).unwrap();
        let fabric = topology.build(geometry);
        let flows = usfq_noc::generate(pattern, topology.nodes(), 2, geometry.epoch.n_max(), seed);
        let schedule = plan(&fabric, &flows);
        let reference = simulate(&fabric, &schedule, SimConfig::reference()).unwrap();
        let env_run = simulate_env(&fabric, &schedule).unwrap();
        assert_eq!(
            reference,
            env_run,
            "{} × {} (seed {seed}) diverged under env config {:?}/{:?}/{:?}",
            topology.label(),
            pattern.label(),
            std::env::var(usfq_sim::shard::SHARDS_ENV).ok(),
            std::env::var(usfq_sim::sched::SCHED_ENV).ok(),
            std::env::var(usfq_sim::BURST_ENV).ok(),
        );
    }
}
