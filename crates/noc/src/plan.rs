//! TDM planner — the *temporal arbiter*. Instead of per-flit header
//! decoding, the planner partitions flows into **rounds** (sets whose
//! crossbar settings agree, so one static switch configuration serves
//! them all) and **sub-slots** within a round (flows sharing any path
//! resource — inject port or router output — are serialized). The
//! result is a pulse-exact stimulus: SEL toggle pulses at each round
//! boundary, flit trains at sub-slot starts, and per-flow delivery
//! windows the decoder counts against.
//!
//! Sub-slots are sized so a worst-case route drains completely before
//! the next sub-slot begins; rounds end with a guard so the next
//! round's control pulses meet quiet demuxes. By construction the
//! fabric therefore delivers every scheduled flit loss-free — the
//! property the proptests pin against the pulse-level simulator.

use std::collections::HashMap;

use usfq_encoding::PulseStream;
use usfq_sim::{InputId, ProbeId, Time};

use crate::topology::NocFabric;
use crate::traffic::Flow;

/// Where and when one flow's flit is expected to arrive.
#[derive(Debug, Clone)]
pub struct FlowDelivery {
    /// Index into the planned flow list.
    pub flow: usize,
    /// Eject probe of the destination endpoint.
    pub probe: ProbeId,
    /// When the flit train's sub-slot (and first possible pulse) starts.
    pub injected_at: Time,
    /// Half-open arrival window at the probe; disjoint from every
    /// other delivery window on the same probe.
    pub window: (Time, Time),
    /// Pulse count the decoder must find in the window.
    pub expected: u64,
    /// Round and sub-slot the flow was assigned.
    pub round: usize,
    /// Sub-slot within the round.
    pub subslot: usize,
}

/// A complete TDM schedule for one traffic pattern on one fabric.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// SEL toggle pulses per control input (only inputs that toggle).
    pub control: Vec<(InputId, Vec<Time>)>,
    /// Flit trains: `(inject input, train, sub-slot start)`.
    pub payload: Vec<(InputId, PulseStream, Time)>,
    /// Expected arrivals, one per flow.
    pub deliveries: Vec<FlowDelivery>,
    /// Number of rounds used.
    pub rounds: usize,
    /// Total sub-slots across all rounds.
    pub total_subslots: usize,
    /// Length of one sub-slot (worst-case flight + payload + guard).
    pub subslot_len: Time,
    /// End of the last round: every pulse has drained by here.
    pub makespan: Time,
}

/// Plans `flows` onto `fabric`. Greedy first-fit: each round admits
/// every remaining flow whose switch settings don't conflict with the
/// round's accumulated configuration, then packs admitted flows into
/// the earliest sub-slot whose resources are free.
pub fn plan(fabric: &NocFabric, flows: &[Flow]) -> Schedule {
    let routes: Vec<_> = flows.iter().map(|f| fabric.route(f.src, f.dst)).collect();
    let subslot_len = fabric.flight_bound(fabric.max_routers)
        + fabric.geometry.payload_span()
        + fabric.geometry.guard;

    // Phase 1: partition into rounds and sub-slots.
    struct Assigned {
        round: usize,
        subslot: usize,
    }
    // One TDM round: the agreed switch settings, plus the path
    // resources each sub-slot has already claimed.
    struct RoundPlan {
        settings: HashMap<usize, bool>,
        subslots: Vec<Vec<usize>>,
    }
    let mut assignment: Vec<Option<Assigned>> = flows.iter().map(|_| None).collect();
    let mut round_plans: Vec<RoundPlan> = Vec::new();
    let mut unassigned = flows.len();
    while unassigned > 0 {
        let round = round_plans.len();
        let mut settings: HashMap<usize, bool> = HashMap::new();
        let mut subslots: Vec<Vec<usize>> = Vec::new();
        let mut admitted = 0usize;
        for (idx, route) in routes.iter().enumerate() {
            if assignment[idx].is_some() {
                continue;
            }
            let compatible = route
                .settings
                .iter()
                .all(|&(sel, st)| settings.get(&sel).map_or(true, |&have| have == st));
            if !compatible {
                continue;
            }
            for &(sel, st) in &route.settings {
                settings.insert(sel, st);
            }
            let subslot = subslots
                .iter()
                .position(|used| route.resources.iter().all(|r| !used.contains(r)))
                .unwrap_or_else(|| {
                    subslots.push(Vec::new());
                    subslots.len() - 1
                });
            subslots[subslot].extend(route.resources.iter().copied());
            assignment[idx] = Some(Assigned { round, subslot });
            admitted += 1;
        }
        assert!(admitted > 0, "an empty round admits any flow");
        unassigned -= admitted;
        round_plans.push(RoundPlan { settings, subslots });
    }

    // Phase 2: lay the rounds out on the timeline and emit pulses.
    let mut switch_state = vec![false; fabric.selects.len()];
    let mut control: HashMap<usize, Vec<Time>> = HashMap::new();
    let mut round_starts = Vec::with_capacity(round_plans.len());
    let mut t = Time::ZERO;
    let mut total_subslots = 0usize;
    for RoundPlan { settings, subslots } in &round_plans {
        round_starts.push(t);
        // Toggle exactly the switches whose required state differs;
        // untouched switches keep their state into the next round.
        let mut toggles: Vec<usize> = settings
            .iter()
            .filter(|&(&sel, &st)| switch_state[sel] != st)
            .map(|(&sel, _)| sel)
            .collect();
        toggles.sort_unstable();
        for sel in toggles {
            switch_state[sel] = !switch_state[sel];
            control.entry(sel).or_default().push(t);
        }
        total_subslots += subslots.len();
        t += fabric.geometry.control_settle + subslot_len * subslots.len() as u64;
    }

    let mut payload = Vec::with_capacity(flows.len());
    let mut deliveries = Vec::with_capacity(flows.len());
    for (idx, flow) in flows.iter().enumerate() {
        let a = assignment[idx].as_ref().expect("every flow is assigned");
        let start =
            round_starts[a.round] + fabric.geometry.control_settle + subslot_len * a.subslot as u64;
        let stream = PulseStream::from_count(flow.payload, fabric.geometry.epoch)
            .expect("payload fits the flit epoch");
        payload.push((fabric.inject[flow.src], stream, start));
        deliveries.push(FlowDelivery {
            flow: idx,
            probe: fabric.eject[flow.dst],
            injected_at: start,
            window: (start, start + subslot_len),
            expected: flow.payload,
            round: a.round,
            subslot: a.subslot,
        });
    }

    let mut control: Vec<(InputId, Vec<Time>)> = control
        .into_iter()
        .map(|(sel, times)| (fabric.selects[sel], times))
        .collect();
    control.sort_by_key(|(input, _)| input.index());

    Schedule {
        control,
        payload,
        deliveries,
        rounds: round_plans.len(),
        total_subslots,
        subslot_len,
        makespan: t,
    }
}
