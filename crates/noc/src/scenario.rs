//! End-to-end scenarios: simulate a planned schedule on a fabric
//! under any engine configuration, decode the arriving flits, and
//! summarize latency / throughput / area.
//!
//! The [`NocOutcome`] fingerprint deliberately excludes the two
//! documented engine divergences (`peak_pending`, sanitizer violation
//! *order* — violations are pre-sorted, and the event count, which the
//! burst engine legitimately compresses), so outcomes from any point
//! of the `{sched} × {burst} × {shards}` configuration space compare
//! with plain `==`. That is the byte-identical contract the
//! differential tests and the CI matrix pin.

use usfq_sim::{SanitizerConfig, Sched, ShardedSimulator, SimError, Time};

use crate::flit::FlitGeometry;
use crate::plan::{plan, Schedule};
use crate::topology::{NocFabric, Topology};
use crate::traffic::{generate, Flow, Pattern};

/// One point of the engine configuration space.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Shard count (1 = single sequential simulator).
    pub shards: usize,
    /// Event-queue scheduler.
    pub sched: Sched,
    /// Burst (coalesced-train) engine on/off.
    pub burst: bool,
    /// Runtime pulse sanitizer on/off.
    pub sanitize: bool,
}

impl SimConfig {
    /// The reference point: sequential heap scheduler, pulse-level.
    pub fn reference() -> Self {
        SimConfig {
            shards: 1,
            sched: Sched::Heap,
            burst: false,
            sanitize: false,
        }
    }

    /// The far corner the acceptance differential pins against the
    /// reference: two shards, calendar wheel, coalesced bursts.
    pub fn subject() -> Self {
        SimConfig {
            shards: 2,
            sched: Sched::Wheel,
            burst: true,
            sanitize: false,
        }
    }
}

/// A configuration-invariant run fingerprint (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocOutcome {
    /// Arrival times at each eject probe, endpoint order.
    pub probe_times: Vec<Vec<Time>>,
    /// Pulses handled per component.
    pub handled: Vec<u64>,
    /// Pulses emitted per component.
    pub emitted: Vec<u64>,
    /// Anomaly tallies (e.g. merger collisions), rendered and sorted.
    pub anomalies: Vec<(String, u64)>,
    /// Sanitizer violations, rendered and sorted; empty when off.
    pub violations: Vec<String>,
}

/// Simulates `schedule` on `fabric` under `cfg`.
///
/// # Errors
///
/// Propagates simulator errors (none occur for planner-produced
/// schedules on their own fabric).
pub fn simulate(
    fabric: &NocFabric,
    schedule: &Schedule,
    cfg: SimConfig,
) -> Result<NocOutcome, SimError> {
    let mut sim = ShardedSimulator::with_sched(fabric.circuit.clone(), cfg.shards, cfg.sched);
    sim.set_burst(cfg.burst);
    if cfg.sanitize {
        sim.enable_sanitizer(SanitizerConfig::default());
    }
    run_and_fingerprint(fabric, schedule, sim)
}

/// Simulates `schedule` with every engine knob taken from the
/// environment (`USFQ_SHARDS`, `USFQ_SCHED`, `USFQ_BURST`) — the entry
/// point the CI configuration matrix steers.
///
/// # Errors
///
/// Propagates simulator errors (none occur for planner-produced
/// schedules on their own fabric).
pub fn simulate_env(fabric: &NocFabric, schedule: &Schedule) -> Result<NocOutcome, SimError> {
    let sim = ShardedSimulator::from_env(fabric.circuit.clone());
    run_and_fingerprint(fabric, schedule, sim)
}

fn run_and_fingerprint(
    fabric: &NocFabric,
    schedule: &Schedule,
    mut sim: ShardedSimulator,
) -> Result<NocOutcome, SimError> {
    for (input, times) in &schedule.control {
        sim.schedule_pulses(*input, times.iter().copied())?;
    }
    for (input, stream, at) in &schedule.payload {
        sim.schedule_burst(*input, stream.burst_from(*at))?;
    }
    sim.run()?;
    let activity = sim.activity();
    let mut violations = sim.sanitizer_violations();
    violations.sort();
    Ok(NocOutcome {
        probe_times: fabric
            .eject
            .iter()
            .map(|&p| sim.probe_times(p).to_vec())
            .collect(),
        handled: activity.handled.clone(),
        emitted: activity.emitted.clone(),
        anomalies: activity
            .anomalies
            .iter()
            .map(|(kind, &count)| (format!("{kind:?}"), count))
            .collect(),
        violations,
    })
}

/// One decoded flow.
#[derive(Debug, Clone)]
pub struct DecodedFlow {
    /// Index into the planned flow list.
    pub flow: usize,
    /// Pulses found inside the delivery window.
    pub arrived: u64,
    /// Pulses the flit carried.
    pub expected: u64,
    /// Last in-window arrival minus sub-slot start (flight time).
    pub network_latency: Time,
    /// Last in-window arrival minus epoch start (queueing + flight).
    pub total_latency: Time,
}

/// Counts every delivery window of `schedule` against `outcome`.
pub fn decode(fabric: &NocFabric, schedule: &Schedule, outcome: &NocOutcome) -> Vec<DecodedFlow> {
    schedule
        .deliveries
        .iter()
        .map(|d| {
            let probe_idx = fabric
                .eject
                .iter()
                .position(|&p| p == d.probe)
                .expect("delivery probe belongs to fabric");
            let times = &outcome.probe_times[probe_idx];
            let arrived = FlitGeometry::decode(times, d.window);
            let last = times
                .iter()
                .filter(|&&t| t >= d.window.0 && t < d.window.1)
                .max()
                .copied()
                .unwrap_or(d.injected_at);
            DecodedFlow {
                flow: d.flow,
                arrived,
                expected: d.expected,
                network_latency: last - d.injected_at,
                total_latency: last,
            }
        })
        .collect()
}

/// Aggregated scenario metrics for the figures/bench layers.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Topology label, e.g. `mesh4x4`.
    pub topology: String,
    /// Pattern label, e.g. `hotspot`.
    pub pattern: String,
    /// Endpoint count.
    pub nodes: usize,
    /// Cell count of the fabric netlist.
    pub components: usize,
    /// Fabric area in Josephson junctions.
    pub jj: u64,
    /// Flows planned.
    pub flows: usize,
    /// TDM rounds the planner needed.
    pub rounds: usize,
    /// Total sub-slots across rounds.
    pub subslots: usize,
    /// Flows whose full payload arrived inside their window.
    pub delivered_flows: usize,
    /// Payload pulses injected.
    pub injected_pulses: u64,
    /// Payload pulses lost (injected minus arrived-in-window).
    pub lost_pulses: u64,
    /// Schedule makespan.
    pub makespan: Time,
    /// Mean flight latency over flows, ps.
    pub mean_network_latency_ps: f64,
    /// Mean queueing+flight latency over flows, ps.
    pub mean_total_latency_ps: f64,
    /// Worst queueing+flight latency, ps.
    pub max_total_latency_ps: f64,
    /// Delivered payload pulses per nanosecond of makespan.
    pub throughput_pulses_per_ns: f64,
}

/// Builds, plans, simulates, and decodes one `(topology, pattern)`
/// scenario. Fully deterministic in its arguments.
///
/// # Panics
///
/// Panics if the simulator rejects the planner's schedule — that
/// would be a bug, not an input condition.
pub fn run_scenario(
    topology: Topology,
    pattern: Pattern,
    flows_per_node: usize,
    seed: u64,
    cfg: SimConfig,
) -> ScenarioResult {
    let geometry = FlitGeometry::with_bits(4).expect("4-bit flits are always valid");
    let fabric = topology.build(geometry);
    let flows = generate(
        pattern,
        topology.nodes(),
        flows_per_node,
        geometry.epoch.n_max(),
        seed,
    );
    let schedule = plan(&fabric, &flows);
    let outcome = simulate(&fabric, &schedule, cfg).expect("planned schedule simulates");
    summarize(&fabric, &flows, &schedule, &outcome, pattern)
}

/// Aggregates decoded flows into a [`ScenarioResult`].
pub fn summarize(
    fabric: &NocFabric,
    flows: &[Flow],
    schedule: &Schedule,
    outcome: &NocOutcome,
    pattern: Pattern,
) -> ScenarioResult {
    let decoded = decode(fabric, schedule, outcome);
    let injected: u64 = flows.iter().map(|f| f.payload).sum();
    let arrived: u64 = decoded.iter().map(|d| d.arrived.min(d.expected)).sum();
    let delivered_flows = decoded.iter().filter(|d| d.arrived == d.expected).count();
    let n = decoded.len().max(1) as f64;
    let makespan_ns = schedule.makespan.as_ps() / 1000.0;
    ScenarioResult {
        topology: fabric.topology.label(),
        pattern: pattern.label().to_string(),
        nodes: fabric.topology.nodes(),
        components: fabric.circuit.components().count(),
        jj: fabric.circuit.total_jj(),
        flows: flows.len(),
        rounds: schedule.rounds,
        subslots: schedule.total_subslots,
        delivered_flows,
        injected_pulses: injected,
        lost_pulses: injected - arrived,
        makespan: schedule.makespan,
        mean_network_latency_ps: decoded
            .iter()
            .map(|d| d.network_latency.as_ps())
            .sum::<f64>()
            / n,
        mean_total_latency_ps: decoded.iter().map(|d| d.total_latency.as_ps()).sum::<f64>() / n,
        max_total_latency_ps: decoded
            .iter()
            .map(|d| d.total_latency.as_ps())
            .fold(0.0, f64::max),
        throughput_pulses_per_ns: if makespan_ns > 0.0 {
            arrived as f64 / makespan_ns
        } else {
            0.0
        },
    }
}
