//! Temporal router: a structural assembly of cells from `usfq_cells`.
//!
//! Per input port: a two-stage JTL input buffer feeding a
//! [`DemuxTree`] sized to exactly that port's *allowed* output set
//! (so no crossbar leaf ever dangles). Per output port: a
//! [`MergerTree`] arbiter over every input leaf that may reach it,
//! followed by a JTL output driver. Demux `SEL` pins are brought out
//! as external circuit inputs; the TDM planner steers the crossbar by
//! pulsing them between rounds — *temporal* (schedule-driven) routing
//! instead of header decoding, in the spirit of the PaST-NoC
//! follow-on work.

use usfq_cells::interconnect::{Jtl, MergerTree};
use usfq_cells::switch::DemuxTree;
use usfq_sim::circuit::{NodeRef, SinkRef};
use usfq_sim::{Circuit, InputId, SimError, Time};

/// One input port of a router spec: a label (used in cell names) and
/// the router-local indices of the outputs this input may route to.
#[derive(Debug, Clone)]
pub struct InPort {
    /// Short label, e.g. `"inj"` or `"w"`.
    pub label: String,
    /// Indices into the router's output list this input may reach.
    pub allowed: Vec<usize>,
}

/// A router to instantiate: named ports plus the input→output
/// reachability relation (the turn model).
#[derive(Debug, Clone)]
pub struct RouterSpec {
    /// Cell-name prefix, e.g. `"n3"`.
    pub name: String,
    /// Input ports in order.
    pub inputs: Vec<InPort>,
    /// Output port labels in order, e.g. `["ej", "e", "s"]`.
    pub outputs: Vec<String>,
}

/// Switch settings realizing one turn: `(select index, state)` pairs.
pub type TurnSettings = Vec<(usize, bool)>;

/// `table[i][o]`: the settings steering input `i` to output `o`, or
/// `None` when the turn is disallowed.
pub type RouteTable = Vec<Vec<Option<TurnSettings>>>;

/// The instantiated router: external hookup points plus the switch
/// settings that realize each allowed (input, output) turn.
#[derive(Debug)]
pub struct BuiltRouter {
    /// Per input port: the sink to drive (head of the input buffer).
    pub ins: Vec<SinkRef>,
    /// Per output port: the node after the arbiter's output driver.
    pub outs: Vec<NodeRef>,
    /// External control inputs, one per demux in this router, in
    /// creation order (input port major, then tree order).
    pub selects: Vec<InputId>,
    /// `route[i][o]`: the `(select index, state)` settings — indices
    /// into `selects` — that steer input `i` to output `o`, or `None`
    /// when the turn is disallowed.
    pub route: RouteTable,
}

impl RouterSpec {
    /// Instantiates this router into `circuit`.
    ///
    /// Cell names: input buffers `{name}_{label}_j*`, crossbar demuxes
    /// `{name}_{label}_x_d*`, arbiters `{name}_{olabel}_a_m*`, output
    /// drivers `{name}_{olabel}_o`; control inputs
    /// `{name}_{label}_s{k}`.
    ///
    /// # Errors
    ///
    /// Propagates wiring errors from the circuit builder (none occur
    /// for a well-formed spec).
    pub fn build(&self, circuit: &mut Circuit) -> Result<BuiltRouter, SimError> {
        let name = &self.name;
        let mut ins = Vec::with_capacity(self.inputs.len());
        let mut selects = Vec::new();
        let mut route = vec![vec![None; self.outputs.len()]; self.inputs.len()];
        // Leaves that arbitrate for each output, in input-port order
        // (deterministic arbiter shape).
        let mut claims: Vec<Vec<NodeRef>> = vec![Vec::new(); self.outputs.len()];

        for (i, port) in self.inputs.iter().enumerate() {
            let label = &port.label;
            let buf0 = circuit.add(Jtl::new(format!("{name}_{label}_j0")));
            let buf1 = circuit.add(Jtl::new(format!("{name}_{label}_j1")));
            circuit.connect(buf0.output(Jtl::OUT), buf1.input(Jtl::IN), Time::ZERO)?;
            let tree = DemuxTree::build(circuit, &format!("{name}_{label}_x"), port.allowed.len())?;
            circuit.connect(buf1.output(Jtl::OUT), tree.input, Time::ZERO)?;
            ins.push(buf0.input(Jtl::IN));

            let base = selects.len();
            for (k, sel) in tree.selects.iter().enumerate() {
                let ctl = circuit.input(format!("{name}_{label}_s{k}"));
                circuit.connect_input(ctl, *sel, Time::ZERO)?;
                selects.push(ctl);
            }
            for (leaf, (&o, path)) in port.allowed.iter().zip(&tree.paths).enumerate() {
                route[i][o] = Some(
                    path.iter()
                        .map(|&(sel, state)| (base + sel, state))
                        .collect(),
                );
                claims[o].push(tree.leaves[leaf]);
            }
        }

        let mut outs = Vec::with_capacity(self.outputs.len());
        for (o, olabel) in self.outputs.iter().enumerate() {
            assert!(
                !claims[o].is_empty(),
                "router {name}: output {olabel} is unreachable from every input"
            );
            let tree = MergerTree::build(circuit, &format!("{name}_{olabel}_a"), claims[o].len())?;
            for (leaf, sink) in claims[o].iter().zip(&tree.inputs) {
                circuit.connect(*leaf, *sink, Time::ZERO)?;
            }
            let drv = circuit.add(Jtl::new(format!("{name}_{olabel}_o")));
            circuit.connect(tree.output, drv.input(Jtl::IN), Time::ZERO)?;
            outs.push(drv.output(Jtl::OUT));
        }

        Ok(BuiltRouter {
            ins,
            outs,
            selects,
            route,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usfq_sim::Simulator;

    /// A 2-in/2-out router where each input reaches both outputs:
    /// steering by SEL pulses delivers data to exactly one output.
    #[test]
    fn router_steers_by_control() {
        let mut c = Circuit::new();
        let spec = RouterSpec {
            name: "r".into(),
            inputs: vec![
                InPort {
                    label: "a".into(),
                    allowed: vec![0, 1],
                },
                InPort {
                    label: "b".into(),
                    allowed: vec![0, 1],
                },
            ],
            outputs: vec!["x".into(), "y".into()],
        };
        let r = spec.build(&mut c).unwrap();
        let din = c.input("din");
        c.connect_input(din, r.ins[0], Time::ZERO).unwrap();
        let px = c.probe(r.outs[0], "x");
        let py = c.probe(r.outs[1], "y");

        // Input a → output y needs its route settings applied.
        let path = r.route[0][1].clone().unwrap();
        let mut sim = Simulator::new(c);
        for (sel, state) in path {
            if state {
                // Power-on state is false (OUT_A); one toggle selects B.
                sim.schedule_input(r.selects[sel], Time::ZERO).unwrap();
            }
        }
        sim.schedule_input(din, Time::from_ps(100.0)).unwrap();
        sim.run().unwrap();
        assert_eq!(sim.probe_count(px), 0);
        assert_eq!(sim.probe_count(py), 1);
    }

    #[test]
    fn disallowed_turn_has_no_route() {
        let mut c = Circuit::new();
        let spec = RouterSpec {
            name: "r".into(),
            inputs: vec![
                InPort {
                    label: "n".into(),
                    allowed: vec![1],
                },
                InPort {
                    label: "inj".into(),
                    allowed: vec![0, 1],
                },
            ],
            outputs: vec!["w".into(), "ej".into()],
        };
        let r = spec.build(&mut c).unwrap();
        // The XY turn model forbids n → w.
        assert!(r.route[0][0].is_none());
        assert!(r.route[0][1].is_some());
        // A single-destination input needs no switch settings at all:
        // its crossbar degenerates to a JTL passthrough.
        assert_eq!(r.route[0][1].as_ref().unwrap().len(), 0);
        // The unrestricted input reaches both outputs through one demux.
        assert_eq!(r.route[1][0].as_ref().unwrap().len(), 1);
        assert_eq!(r.route[1][1].as_ref().unwrap().len(), 1);
    }
}
