//! Topology builder: instantiates a fabric of temporal routers —
//! mesh, torus, or one-big-switch — as a single [`Circuit`], and
//! computes XY (dimension-order) routes over it.
//!
//! Links between routers carry a positive wire delay, so a sharded
//! simulation can contract each router (whose internal wires are
//! zero-delay) into one atomic unit and use the link delay as
//! conservative lookahead. Components are added router-major, which
//! gives the shard partitioner contiguous router blocks.

use usfq_cells::catalog;
use usfq_lint::LintConfig;
use usfq_sim::{Circuit, InputId, ProbeId, Time};

use crate::flit::FlitGeometry;
use crate::router::{InPort, RouteTable, RouterSpec};

/// Inter-router link delay: long enough to dominate shard lookahead,
/// short against the flit sub-slot.
pub const LINK_DELAY: Time = Time::from_fs(10_000);

/// A fabric shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// `k × k` mesh, XY dimension-order routing, no wraparound.
    Mesh {
        /// Side length (`k >= 2`).
        k: usize,
    },
    /// `k × k` torus: mesh plus wraparound rings, shortest-way XY.
    Torus {
        /// Side length (`k >= 2`).
        k: usize,
    },
    /// A single `n`-port crossbar router ("one big switch").
    BigSwitch {
        /// Port count (`n >= 2`).
        n: usize,
    },
}

impl Topology {
    /// Number of endpoints (inject/eject pairs).
    pub fn nodes(&self) -> usize {
        match *self {
            Topology::Mesh { k } | Topology::Torus { k } => k * k,
            Topology::BigSwitch { n } => n,
        }
    }

    /// Stable artefact label, e.g. `mesh4x4`.
    pub fn label(&self) -> String {
        match *self {
            Topology::Mesh { k } => format!("mesh{k}x{k}"),
            Topology::Torus { k } => format!("torus{k}x{k}"),
            Topology::BigSwitch { n } => format!("bigswitch{n}"),
        }
    }

    /// Builds the fabric circuit for this topology.
    pub fn build(&self, geometry: FlitGeometry) -> NocFabric {
        match *self {
            Topology::Mesh { k } => build_grid(*self, k, false, geometry),
            Topology::Torus { k } => build_grid(*self, k, true, geometry),
            Topology::BigSwitch { n } => build_big_switch(*self, n, geometry),
        }
    }
}

/// Per-router route metadata kept by the fabric.
#[derive(Debug)]
struct RouterMeta {
    in_labels: Vec<String>,
    out_labels: Vec<String>,
    /// `route[i][o]`: global `(select, state)` settings, `None` when
    /// the turn is disallowed.
    route: RouteTable,
    /// First global output-resource id of this router's outputs.
    out_base: usize,
}

impl RouterMeta {
    fn in_port(&self, label: &str) -> usize {
        self.in_labels
            .iter()
            .position(|l| l == label)
            .expect("router input port exists")
    }
    fn out_port(&self, label: &str) -> usize {
        self.out_labels
            .iter()
            .position(|l| l == label)
            .expect("router output port exists")
    }
}

/// A route through the fabric: the switch settings it needs and the
/// exclusive resources it occupies while a flit is in flight.
#[derive(Debug, Clone)]
pub struct Route {
    /// Global `(select index, state)` settings for every demux on the
    /// path. Settings for distinct hops never conflict: each demux
    /// appears at most once.
    pub settings: Vec<(usize, bool)>,
    /// Exclusive resource ids (inject port + every router output port
    /// traversed). Two flows sharing any resource must use different
    /// sub-slots.
    pub resources: Vec<usize>,
    /// Router traversals (1 for a big switch, Manhattan distance + 1
    /// on a grid).
    pub routers: usize,
}

/// A built fabric: the circuit plus everything needed to steer,
/// stimulate, and observe it.
#[derive(Debug)]
pub struct NocFabric {
    /// The assembled netlist.
    pub circuit: Circuit,
    /// Shape this fabric was built from.
    pub topology: Topology,
    /// Flit geometry the fabric was sized for.
    pub geometry: FlitGeometry,
    /// Per endpoint: the external inject input.
    pub inject: Vec<InputId>,
    /// Per endpoint: the eject probe.
    pub eject: Vec<ProbeId>,
    /// All demux control inputs, router-major.
    pub selects: Vec<InputId>,
    routers: Vec<RouterMeta>,
    /// Worst-case router traversals of any route.
    pub max_routers: usize,
    /// Conservative one-router flight bound (buffer + crossbar +
    /// arbiter + driver + outgoing link).
    pub hop_bound: Time,
    total_out_resources: usize,
}

impl NocFabric {
    /// The XY route from endpoint `src` to endpoint `dst` (which may
    /// equal `src`: inject → eject through the local router).
    pub fn route(&self, src: usize, dst: usize) -> Route {
        let mut resources = vec![self.total_out_resources + src];
        let (k, wrap) = match self.topology {
            Topology::Mesh { k } => (k, false),
            Topology::Torus { k } => (k, true),
            Topology::BigSwitch { .. } => {
                // Single router: src's input port straight to dst's
                // eject port.
                let meta = &self.routers[0];
                let i = meta.in_port(&format!("i{src}"));
                let o = meta.out_port(&format!("e{dst}"));
                let settings = meta.route[i][o]
                    .clone()
                    .expect("big switch allows every turn");
                resources.push(meta.out_base + o);
                return Route {
                    settings,
                    resources,
                    routers: 1,
                };
            }
        };
        let mut settings = Vec::new();
        let mut routers = 0usize;
        let mut node = src;
        let mut in_label = "inj";
        loop {
            routers += 1;
            let out_label = grid_step(k, node, dst, wrap);
            let meta = &self.routers[node];
            let i = meta.in_port(in_label);
            let o = meta.out_port(&out_label);
            settings.extend(
                meta.route[i][o]
                    .as_ref()
                    .expect("XY route only takes allowed turns")
                    .iter()
                    .copied(),
            );
            resources.push(meta.out_base + o);
            if out_label == "ej" {
                break;
            }
            let (x, y) = (node % k, node / k);
            let (nx, ny, next_in) = match out_label.as_str() {
                "e" => ((x + 1) % k, y, "w"),
                "w" => ((x + k - 1) % k, y, "e"),
                "s" => (x, (y + 1) % k, "n"),
                "n" => (x, (y + k - 1) % k, "s"),
                other => unreachable!("unexpected grid output {other}"),
            };
            node = ny * k + nx;
            in_label = next_in;
        }
        Route {
            settings,
            resources,
            routers,
        }
    }

    /// Conservative flight-time bound for a route of `routers`
    /// traversals.
    pub fn flight_bound(&self, routers: usize) -> Time {
        self.hop_bound * routers as u64
    }

    /// The lint envelope this fabric is analyzed under: inputs pulse
    /// within `[0, horizon]`, arrivals must settle within the horizon
    /// plus one worst-case flight, and the fabric's two *declared*
    /// hazard classes are waived — merger-collision windows on the
    /// arbiter trees (`USFQ006`) and SEL/data setup races on the
    /// crossbar demuxes (`USFQ007`). Both are exactly what the TDM
    /// schedule avoids dynamically; static timing cannot see the
    /// schedule, so the acknowledgment lives here, in the open.
    /// Torus wrap rings are cyclic by construction, so its router
    /// cells are cycle-allowlisted (timing is then skipped with an
    /// `USFQ010` info note rather than erroring).
    pub fn lint_config(&self, horizon: Time) -> LintConfig {
        let cycle_allowlist = match self.topology {
            Topology::Torus { .. } => vec!["n".to_string()],
            Topology::Mesh { .. } | Topology::BigSwitch { .. } => Vec::new(),
        };
        LintConfig {
            input_window: horizon,
            epoch_budget: Some(horizon + self.flight_bound(self.max_routers) + self.hop_bound),
            cycle_allowlist,
            epoch_pulse_capacity: Some(self.geometry.epoch.n_max()),
            rl_epoch_end: None,
            waivers: vec![
                ("USFQ006".to_string(), "_a_m".to_string()),
                ("USFQ007".to_string(), "_x_d".to_string()),
            ],
        }
    }
}

/// The XY (dimension-order) next output at `node` toward `dst`;
/// `wrap` enables shortest-way wraparound (torus).
fn grid_step(k: usize, node: usize, dst: usize, wrap: bool) -> String {
    let (x, y) = (node % k, node / k);
    let (dx, dy) = (dst % k, dst / k);
    let dir = |from: usize, to: usize, pos: &'static str, neg: &'static str| -> Option<String> {
        if from == to {
            return None;
        }
        if wrap {
            let fwd = (to + k - from) % k;
            let back = (from + k - to) % k;
            Some(if fwd <= back { pos } else { neg }.to_string())
        } else {
            Some(if to > from { pos } else { neg }.to_string())
        }
    };
    dir(x, dx, "e", "w")
        .or_else(|| dir(y, dy, "s", "n"))
        .unwrap_or_else(|| "ej".to_string())
}

/// Grid turn model: which outputs an input may route to, XY
/// dimension-order (X channels may turn into Y, never the reverse).
fn grid_allowed(in_label: &str, out_labels: &[String]) -> Vec<usize> {
    let permitted: &[&str] = match in_label {
        "inj" => &["ej", "e", "w", "n", "s"],
        // Eastbound / westbound traffic may continue, turn to Y, or eject.
        "w" => &["ej", "e", "n", "s"],
        "e" => &["ej", "w", "n", "s"],
        // Y-channel traffic only continues or ejects.
        "n" => &["ej", "s"],
        "s" => &["ej", "n"],
        other => unreachable!("unexpected grid input {other}"),
    };
    out_labels
        .iter()
        .enumerate()
        .filter(|(_, l)| permitted.contains(&l.as_str()))
        .map(|(o, _)| o)
        .collect()
}

fn build_grid(topology: Topology, k: usize, wrap: bool, geometry: FlitGeometry) -> NocFabric {
    assert!(k >= 2, "grid needs k >= 2");
    let nodes = k * k;
    let mut circuit = Circuit::new();
    let mut routers = Vec::with_capacity(nodes);
    let mut built = Vec::with_capacity(nodes);
    let mut selects = Vec::new();
    let mut inject = Vec::with_capacity(nodes);
    let mut out_base = 0usize;
    let mut max_demux_fan = 1usize;
    let mut max_merge_fan = 1usize;

    for id in 0..nodes {
        let (x, y) = (id % k, id / k);
        let has = |d: &str| -> bool {
            wrap || match d {
                "e" => x + 1 < k,
                "w" => x > 0,
                "s" => y + 1 < k,
                "n" => y > 0,
                _ => unreachable!(),
            }
        };
        let mut out_labels = vec!["ej".to_string()];
        for d in ["e", "w", "n", "s"] {
            if has(d) {
                out_labels.push(d.to_string());
            }
        }
        let mut inputs = vec![InPort {
            label: "inj".into(),
            allowed: grid_allowed("inj", &out_labels),
        }];
        for d in ["w", "e", "n", "s"] {
            // An input from direction d exists iff the link toward d
            // exists (the neighbour mirrors it).
            if has(d) {
                inputs.push(InPort {
                    label: d.to_string(),
                    allowed: grid_allowed(d, &out_labels),
                });
            }
        }
        for p in &inputs {
            max_demux_fan = max_demux_fan.max(p.allowed.len());
        }
        for o in 0..out_labels.len() {
            let fan = inputs.iter().filter(|p| p.allowed.contains(&o)).count();
            max_merge_fan = max_merge_fan.max(fan);
        }
        let spec = RouterSpec {
            name: format!("n{id}"),
            inputs: inputs.clone(),
            outputs: out_labels.clone(),
        };
        let b = spec.build(&mut circuit).expect("grid router builds");
        let select_base = selects.len();
        selects.extend(b.selects.iter().copied());
        let route = b
            .route
            .iter()
            .map(|per_out| {
                per_out
                    .iter()
                    .map(|opt| {
                        opt.as_ref()
                            .map(|path| path.iter().map(|&(s, st)| (select_base + s, st)).collect())
                    })
                    .collect()
            })
            .collect();
        routers.push(RouterMeta {
            in_labels: inputs.into_iter().map(|p| p.label).collect(),
            out_labels: out_labels.clone(),
            route,
            out_base,
        });
        out_base += out_labels.len();

        let inj = circuit.input(format!("inj{id}"));
        circuit
            .connect_input(inj, b.ins[0], Time::ZERO)
            .expect("inject wiring");
        inject.push(inj);
        built.push(b);
    }

    // Inter-router links and eject probes.
    let mut eject = Vec::with_capacity(nodes);
    for id in 0..nodes {
        let (x, y) = (id % k, id / k);
        for (d, nx, ny, remote_in) in [
            ("e", (x + 1) % k, y, "w"),
            ("w", (x + k - 1) % k, y, "e"),
            ("s", x, (y + 1) % k, "n"),
            ("n", x, (y + k - 1) % k, "s"),
        ] {
            if let Some(o) = routers[id].out_labels.iter().position(|l| l == d) {
                let neighbour = ny * k + nx;
                let i = routers[neighbour].in_port(remote_in);
                circuit
                    .connect(built[id].outs[o], built[neighbour].ins[i], LINK_DELAY)
                    .expect("link wiring");
            }
        }
        let probe = circuit.probe(built[id].outs[0], format!("ej{id}"));
        eject.push(probe);
    }

    let max_routers = if wrap {
        2 * (k / 2) + 1
    } else {
        2 * (k - 1) + 1
    };
    NocFabric {
        circuit,
        topology,
        geometry,
        inject,
        eject,
        selects,
        routers,
        max_routers,
        hop_bound: hop_bound(max_demux_fan, max_merge_fan),
        total_out_resources: out_base,
    }
}

fn build_big_switch(topology: Topology, n: usize, geometry: FlitGeometry) -> NocFabric {
    assert!(n >= 2, "big switch needs n >= 2");
    let mut circuit = Circuit::new();
    let out_labels: Vec<String> = (0..n).map(|j| format!("e{j}")).collect();
    let inputs: Vec<InPort> = (0..n)
        .map(|j| InPort {
            label: format!("i{j}"),
            allowed: (0..n).collect(),
        })
        .collect();
    let spec = RouterSpec {
        name: "n0".into(),
        inputs: inputs.clone(),
        outputs: out_labels.clone(),
    };
    let b = spec.build(&mut circuit).expect("big switch builds");
    let mut inject = Vec::with_capacity(n);
    let mut eject = Vec::with_capacity(n);
    for j in 0..n {
        let inj = circuit.input(format!("inj{j}"));
        circuit
            .connect_input(inj, b.ins[j], Time::ZERO)
            .expect("inject wiring");
        inject.push(inj);
        eject.push(circuit.probe(b.outs[j], format!("ej{j}")));
    }
    let meta = RouterMeta {
        in_labels: inputs.iter().map(|p| p.label.clone()).collect(),
        out_labels,
        route: b.route,
        out_base: 0,
    };
    NocFabric {
        circuit,
        topology,
        geometry,
        inject,
        eject,
        selects: b.selects,
        routers: vec![meta],
        max_routers: 1,
        hop_bound: hop_bound(n, n),
        total_out_resources: n,
    }
}

/// Conservative per-router flight bound: two buffer JTLs, the deepest
/// crossbar path, the deepest arbiter path, the output driver, the
/// outgoing link, plus slack for the degenerate-passthrough JTLs the
/// trees insert.
fn hop_bound(max_demux_fan: usize, max_merge_fan: usize) -> Time {
    let demux_depth = tree_depth(max_demux_fan);
    let merge_depth = tree_depth(max_merge_fan);
    catalog::t_jtl() * 4
        + catalog::t_ff() * demux_depth as u64
        + catalog::t_merger() * merge_depth as u64
        + LINK_DELAY
        + Time::from_ps(5.0)
}

fn tree_depth(n: usize) -> usize {
    let mut depth = 0;
    let mut span = 1;
    while span < n {
        span *= 2;
        depth += 1;
    }
    depth.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> FlitGeometry {
        FlitGeometry::with_bits(4).unwrap()
    }

    #[test]
    fn mesh_routes_are_xy() {
        let f = Topology::Mesh { k: 3 }.build(geometry());
        // 0 (0,0) → 8 (2,2): e, e, s, s, eject — 5 router traversals.
        let r = f.route(0, 8);
        assert_eq!(r.routers, 5);
        // inject resource + one output resource per traversal.
        assert_eq!(r.resources.len(), 6);
        // Self-route stays inside the local router.
        assert_eq!(f.route(4, 4).routers, 1);
    }

    #[test]
    fn torus_wraps_the_short_way() {
        let f = Topology::Torus { k: 4 }.build(geometry());
        // 0 (0,0) → 3 (3,0): westward wrap is 1 hop against 3 east.
        let r = f.route(0, 3);
        assert_eq!(r.routers, 2);
    }

    #[test]
    fn big_switch_is_single_hop() {
        let f = Topology::BigSwitch { n: 5 }.build(geometry());
        for dst in 0..5 {
            assert_eq!(f.route(2, dst).routers, 1);
        }
    }

    #[test]
    fn routes_share_resources_only_when_paths_overlap() {
        let f = Topology::Mesh { k: 3 }.build(geometry());
        let a = f.route(0, 2); // e, e, eject along row 0
        let b = f.route(3, 5); // e, e, eject along row 1
        assert!(a.resources.iter().all(|r| !b.resources.contains(r)));
        let c = f.route(1, 2); // shares row-0 links with `a`
        assert!(a.resources.iter().any(|r| c.resources.contains(r)));
    }
}
