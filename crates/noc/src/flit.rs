//! Flit format: one flit is a unary **pulse-stream train** — the
//! payload value is the pulse *count*, scheduled inside a sub-slot by
//! [`usfq_encoding::PulseStream::schedule_from`]. Routing is carried
//! out-of-band by the TDM schedule (demux states), so a flit needs no
//! header pulses at all: the *when* of the train is the address.

use usfq_encoding::{Epoch, PulseStream};
use usfq_sim::Time;

/// Geometry of a flit and of the TDM rounds that carry it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitGeometry {
    /// The counting epoch of the payload train: a flit carries
    /// `1..=epoch.n_max()` pulses spread over `epoch.duration()`.
    pub epoch: Epoch,
    /// Quiet time between a round's control pulses (demux SEL toggles)
    /// and the first data sub-slot, covering control-path flight plus
    /// every demux's setup window.
    pub control_settle: Time,
    /// Guard time appended to each sub-slot so in-flight pulses drain
    /// before the next sub-slot (and before the next round's control).
    pub guard: Time,
}

impl FlitGeometry {
    /// A geometry carrying `bits`-bit payloads on a 20 ps slot grid,
    /// with settle/guard margins sized for the shipped routers.
    ///
    /// # Errors
    ///
    /// Propagates [`Epoch`] construction failure for out-of-range
    /// `bits`.
    pub fn with_bits(bits: u32) -> Result<Self, usfq_encoding::EncodingError> {
        Ok(FlitGeometry {
            epoch: Epoch::with_slot(bits, Time::from_ps(20.0))?,
            control_settle: Time::from_ps(60.0),
            guard: Time::from_ps(60.0),
        })
    }

    /// Time span of the payload train itself.
    pub fn payload_span(&self) -> Time {
        self.epoch.duration()
    }

    /// Encodes `count` pulses as a flit train anchored at `at`.
    ///
    /// # Errors
    ///
    /// Fails when `count` exceeds the epoch's `n_max`.
    pub fn encode(
        &self,
        count: u64,
        at: Time,
    ) -> Result<(PulseStream, Vec<Time>), usfq_encoding::EncodingError> {
        let stream = PulseStream::from_count(count, self.epoch)?;
        let times = stream.schedule_from(at);
        Ok((stream, times))
    }

    /// Decodes a flit: the number of probe arrivals inside
    /// `[window_start, window_end)`.
    pub fn decode(times: &[Time], window: (Time, Time)) -> u64 {
        times
            .iter()
            .filter(|&&t| t >= window.0 && t < window.1)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let g = FlitGeometry::with_bits(4).unwrap();
        let at = Time::from_ps(100.0);
        let (stream, times) = g.encode(9, at).unwrap();
        assert_eq!(stream.count(), 9);
        assert_eq!(times.len(), 9);
        assert!(times.iter().all(|&t| t >= at && t < at + g.payload_span()));
        let end = at + g.payload_span();
        assert_eq!(FlitGeometry::decode(&times, (at, end)), 9);
        assert_eq!(FlitGeometry::decode(&times, (end, end + end)), 0);
    }
}
