//! # usfq-noc — a temporal network-on-chip for U-SFQ accelerators
//!
//! The paper evaluates its PEs and DPUs as isolated blocks; composing
//! them into a full accelerator needs an interconnect. This crate
//! builds one in the same unary spirit — and in the spirit of the
//! authors' PaST-NoC follow-on: routing decisions are carried by
//! *time* (a TDM schedule steering demux-tree crossbars), not by
//! header bits, so a router is nothing but interconnect cells from
//! [`usfq_cells`]:
//!
//! * [`router`] — per input: JTL buffer → [`usfq_cells::switch::DemuxTree`]
//!   crossbar sized to the XY turn model; per output: a
//!   [`usfq_cells::interconnect::MergerTree`] arbiter with physical
//!   collision windows. Demux SEL pins surface as external control
//!   inputs.
//! * [`topology`] — mesh / torus / one-big-switch fabrics as a single
//!   [`usfq_sim::Circuit`], zero-delay inside routers (so shards
//!   contract each router to one atomic unit) and positive-delay
//!   links (so the shard engine has real lookahead); XY dimension-
//!   order route computation with resource accounting.
//! * [`flit`] — a flit is a pulse-stream train: payload = pulse
//!   count, scheduled by [`usfq_encoding::PulseStream::schedule_from`];
//!   decoding is counting inside a delivery window.
//! * [`traffic`] — seeded uniform / permutation / hotspot generators.
//! * [`plan`] — the temporal arbiter: partitions flows into rounds
//!   (compatible crossbar settings) and sub-slots (disjoint path
//!   resources), emits SEL toggles and flit trains, and derives the
//!   per-flow delivery windows. Loss-free by construction.
//! * [`scenario`] — run a schedule under any `{sched, burst, shards}`
//!   engine configuration and fingerprint the outcome; the
//!   fingerprint is configuration-invariant, which the differential
//!   suites and the CI matrix pin.
//!
//! Lint: generated fabrics pass `usfq-lint` clean under
//! [`topology::NocFabric::lint_config`], which *declares* the two
//! expected hazard classes (arbiter merger collisions `USFQ006`,
//! crossbar SEL/data setup races `USFQ007` — both statically
//! unavoidable, dynamically avoided by the TDM schedule) as waivers
//! instead of hiding them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flit;
pub mod plan;
pub mod router;
pub mod scenario;
pub mod topology;
pub mod traffic;

pub use flit::FlitGeometry;
pub use plan::{plan, FlowDelivery, Schedule};
pub use router::{BuiltRouter, InPort, RouterSpec};
pub use scenario::{
    decode, run_scenario, simulate, simulate_env, summarize, DecodedFlow, NocOutcome,
    ScenarioResult, SimConfig,
};
pub use topology::{NocFabric, Route, Topology, LINK_DELAY};
pub use traffic::{generate, Flow, Pattern};

use usfq_lint::LintReport;
use usfq_sim::Time;

/// Lints a fabric under its own envelope with `horizon` as the input
/// window (use the schedule makespan for a planned run).
pub fn lint_fabric(fabric: &NocFabric, horizon: Time) -> LintReport {
    usfq_lint::lint(
        &fabric.circuit,
        &fabric.topology.label(),
        &fabric.lint_config(horizon),
    )
}
