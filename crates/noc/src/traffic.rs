//! Seeded traffic-pattern generators. All randomness is a local
//! xorshift64* so patterns are reproducible from `(pattern, nodes,
//! seed)` alone, with no RNG dependency.

/// One flow: a flit of `payload` pulses from `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Source endpoint.
    pub src: usize,
    /// Destination endpoint.
    pub dst: usize,
    /// Pulse count carried by the flit (`1..=n_max`).
    pub payload: u64,
}

/// A traffic pattern shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Every endpoint sends to a uniformly random other endpoint.
    Uniform,
    /// A seeded random permutation: every endpoint sends to exactly
    /// one endpoint and receives from exactly one.
    Permutation,
    /// Half the endpoints aim at one hot endpoint, the rest uniform.
    Hotspot,
}

impl Pattern {
    /// Stable artefact label.
    pub fn label(&self) -> &'static str {
        match self {
            Pattern::Uniform => "uniform",
            Pattern::Permutation => "permutation",
            Pattern::Hotspot => "hotspot",
        }
    }

    /// All patterns, in artefact order.
    pub fn all() -> [Pattern; 3] {
        [Pattern::Uniform, Pattern::Permutation, Pattern::Hotspot]
    }
}

/// xorshift64*: the same generator family the bench kernels use.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Generates `flows_per_node` flows per endpoint under `pattern`.
/// Payloads are `1..=n_max` pulses. `Permutation` always yields
/// exactly one flow per endpoint regardless of `flows_per_node`.
pub fn generate(
    pattern: Pattern,
    nodes: usize,
    flows_per_node: usize,
    n_max: u64,
    seed: u64,
) -> Vec<Flow> {
    assert!(nodes >= 2, "traffic needs at least two endpoints");
    let mut state = seed | 1;
    let payload = |state: &mut u64| 1 + next_rand(state) % n_max;
    match pattern {
        Pattern::Uniform => {
            let mut flows = Vec::with_capacity(nodes * flows_per_node);
            for src in 0..nodes {
                for _ in 0..flows_per_node {
                    let mut dst = next_rand(&mut state) as usize % nodes;
                    while dst == src {
                        dst = next_rand(&mut state) as usize % nodes;
                    }
                    flows.push(Flow {
                        src,
                        dst,
                        payload: payload(&mut state),
                    });
                }
            }
            flows
        }
        Pattern::Permutation => {
            // Seeded Fisher–Yates; fixed points are legal (a node may
            // talk to itself through its local router).
            let mut dsts: Vec<usize> = (0..nodes).collect();
            for i in (1..nodes).rev() {
                let j = next_rand(&mut state) as usize % (i + 1);
                dsts.swap(i, j);
            }
            (0..nodes)
                .map(|src| Flow {
                    src,
                    dst: dsts[src],
                    payload: payload(&mut state),
                })
                .collect()
        }
        Pattern::Hotspot => {
            let hot = next_rand(&mut state) as usize % nodes;
            let mut flows = Vec::with_capacity(nodes * flows_per_node);
            for src in 0..nodes {
                for f in 0..flows_per_node {
                    let dst = if f % 2 == 0 && src != hot {
                        hot
                    } else {
                        let mut d = next_rand(&mut state) as usize % nodes;
                        while d == src {
                            d = next_rand(&mut state) as usize % nodes;
                        }
                        d
                    };
                    flows.push(Flow {
                        src,
                        dst,
                        payload: payload(&mut state),
                    });
                }
            }
            flows
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_bijection() {
        let flows = generate(Pattern::Permutation, 16, 3, 15, 42);
        assert_eq!(flows.len(), 16);
        let mut seen = [false; 16];
        for f in &flows {
            assert!(!seen[f.dst]);
            seen[f.dst] = true;
            assert!((1..=15).contains(&f.payload));
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for p in Pattern::all() {
            assert_eq!(generate(p, 9, 2, 15, 7), generate(p, 9, 2, 15, 7));
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let flows = generate(Pattern::Hotspot, 16, 2, 15, 9);
        let mut by_dst = [0usize; 16];
        for f in &flows {
            by_dst[f.dst] += 1;
        }
        let max = by_dst.iter().max().copied().unwrap();
        assert!(max >= 15, "hot endpoint should draw ~half the flows");
    }
}
