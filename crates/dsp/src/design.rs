//! FIR design by the windowed-sinc method: low-pass, high-pass, and
//! band-pass prototypes with selectable windows.

use std::f64::consts::{PI, TAU};

/// Window function applied to the sinc prototype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// No windowing (boxcar) — narrowest main lobe, worst sidelobes.
    Rectangular,
    /// Hamming — the default, and what the paper's Octave `fir1` uses.
    #[default]
    Hamming,
    /// Hann — faster sidelobe rolloff than Hamming.
    Hann,
    /// Blackman — deepest stopband, widest main lobe.
    Blackman,
}

impl Window {
    /// Window weight at tap `n` of `taps`.
    pub fn weight(self, n: usize, taps: usize) -> f64 {
        let m = (taps - 1) as f64;
        let x = TAU * n as f64 / m;
        match self {
            Window::Rectangular => 1.0,
            Window::Hamming => 0.54 - 0.46 * x.cos(),
            Window::Hann => 0.5 - 0.5 * x.cos(),
            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }
}

/// [`lowpass`] with an explicit window.
///
/// # Panics
///
/// Panics unless `0 < fc < fs/2` and `taps >= 2`.
pub fn lowpass_with(window: Window, taps: usize, fc: f64, fs: f64) -> Vec<f64> {
    assert!(taps >= 2, "need at least 2 taps");
    assert!(
        fc > 0.0 && fc < fs / 2.0,
        "cutoff {fc} must be in (0, fs/2)"
    );
    let mut h = windowed_sinc_with(window, taps, fc, fs);
    let sum: f64 = h.iter().sum();
    for c in &mut h {
        *c /= sum;
    }
    h
}

/// Designs a `taps`-coefficient low-pass FIR with cutoff `fc` Hz at
/// sample rate `fs`, using a Hamming window — the standard recipe the
/// paper's Octave `fir1` call implements.
///
/// The passband gain is normalised to exactly 1 (coefficients sum to 1).
///
/// # Panics
///
/// Panics unless `0 < fc < fs/2` and `taps >= 2`.
pub fn lowpass(taps: usize, fc: f64, fs: f64) -> Vec<f64> {
    lowpass_with(Window::Hamming, taps, fc, fs)
}

/// Designs a high-pass FIR by spectral inversion of the complementary
/// low-pass: `h_hp = δ − h_lp`. Requires an odd tap count so the delta
/// lands on the symmetric centre tap.
///
/// # Panics
///
/// Panics unless `taps` is odd and `>= 3`, and `0 < fc < fs/2`.
pub fn highpass(taps: usize, fc: f64, fs: f64) -> Vec<f64> {
    assert!(
        taps >= 3 && taps % 2 == 1,
        "high-pass needs an odd tap count"
    );
    let mut h = lowpass(taps, fc, fs);
    for c in &mut h {
        *c = -*c;
    }
    h[taps / 2] += 1.0;
    h
}

/// Designs a band-pass FIR as the difference of two low-passes:
/// `h_bp = lp(f_hi) − lp(f_lo)`.
///
/// # Panics
///
/// Panics unless `0 < f_lo < f_hi < fs/2` and `taps >= 2`.
pub fn bandpass(taps: usize, f_lo: f64, f_hi: f64, fs: f64) -> Vec<f64> {
    assert!(
        f_lo > 0.0 && f_lo < f_hi && f_hi < fs / 2.0,
        "need 0 < f_lo < f_hi < fs/2"
    );
    let lo = lowpass(taps, f_lo, fs);
    let hi = lowpass(taps, f_hi, fs);
    hi.iter().zip(&lo).map(|(h, l)| h - l).collect()
}

/// The raw windowed sinc prototype (unnormalised).
fn windowed_sinc_with(window: Window, taps: usize, fc: f64, fs: f64) -> Vec<f64> {
    let wc = TAU * fc / fs;
    let m = (taps - 1) as f64;
    (0..taps)
        .map(|n| {
            let k = n as f64 - m / 2.0;
            let sinc = if k.abs() < 1e-12 {
                wc / PI
            } else {
                (wc * k).sin() / (PI * k)
            };
            sinc * window.weight(n, taps)
        })
        .collect()
}

/// Magnitude of the filter's frequency response at `f` Hz.
pub fn magnitude_at(coeffs: &[f64], f: f64, fs: f64) -> f64 {
    let w = TAU * f / fs;
    let (mut re, mut im) = (0.0, 0.0);
    for (n, &c) in coeffs.iter().enumerate() {
        re += c * (w * n as f64).cos();
        im -= c * (w * n as f64).sin();
    }
    (re * re + im * im).sqrt()
}

/// The paper's §5.4.1 filter: 16 taps, designed to keep the 1 kHz tone
/// and reject the 7–9 kHz band at a 32 kHz sample rate.
pub fn paper_filter(fs: f64) -> Vec<f64> {
    lowpass(16, 3_000.0, fs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dc_gain_is_unity() {
        let h = lowpass(16, 3_000.0, 32_000.0);
        assert_eq!(h.len(), 16);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((magnitude_at(&h, 0.0, 32_000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coefficients_are_symmetric() {
        let h = lowpass(17, 2_000.0, 32_000.0);
        for i in 0..h.len() / 2 {
            assert!((h[i] - h[h.len() - 1 - i]).abs() < 1e-12, "tap {i}");
        }
    }

    /// The paper's filter passes 1 kHz and rejects 7–9 kHz.
    #[test]
    fn paper_filter_separates_bands() {
        let fs = 32_000.0;
        let h = paper_filter(fs);
        let pass = magnitude_at(&h, 1_000.0, fs);
        assert!(pass > 0.9, "1 kHz gain {pass}");
        for f in [7_000.0, 8_000.0, 9_000.0] {
            let stop = magnitude_at(&h, f, fs);
            assert!(stop < 0.12, "{f} Hz gain {stop}");
        }
    }

    #[test]
    fn highpass_inverts_the_bands() {
        let fs = 32_000.0;
        let h = highpass(31, 4_000.0, fs);
        assert!(magnitude_at(&h, 0.0, fs) < 0.05, "DC leaks");
        assert!(magnitude_at(&h, 12_000.0, fs) > 0.9, "passband sags");
    }

    #[test]
    fn bandpass_selects_the_middle() {
        let fs = 32_000.0;
        let h = bandpass(63, 3_000.0, 6_000.0, fs);
        assert!(magnitude_at(&h, 4_500.0, fs) > 0.85, "centre sags");
        assert!(magnitude_at(&h, 500.0, fs) < 0.15, "low side leaks");
        assert!(magnitude_at(&h, 12_000.0, fs) < 0.15, "high side leaks");
    }

    /// Blackman buys a deeper stopband than the rectangular window at
    /// the same length — the classic trade-off, verified.
    #[test]
    fn window_trade_off() {
        let fs = 32_000.0;
        let stop = |w: Window| {
            let h = lowpass_with(w, 33, 3_000.0, fs);
            // Worst stopband leakage well past the transition band.
            (0..=8)
                .map(|i| magnitude_at(&h, 8_000.0 + 1_000.0 * i as f64, fs))
                .fold(0.0f64, f64::max)
        };
        let rect = stop(Window::Rectangular);
        let blackman = stop(Window::Blackman);
        assert!(blackman < rect / 5.0, "rect {rect}, blackman {blackman}");
        // All windows normalise to unity DC gain.
        for w in [
            Window::Rectangular,
            Window::Hamming,
            Window::Hann,
            Window::Blackman,
        ] {
            let h = lowpass_with(w, 21, 3_000.0, fs);
            assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12, "{w:?}");
        }
    }

    #[test]
    fn default_window_is_hamming() {
        assert_eq!(Window::default(), Window::Hamming);
        let a = lowpass(16, 3_000.0, 32_000.0);
        let b = lowpass_with(Window::Hamming, 16, 3_000.0, 32_000.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn bad_cutoff_panics() {
        let _ = lowpass(16, 20_000.0, 32_000.0);
    }

    #[test]
    #[should_panic(expected = "odd tap count")]
    fn even_highpass_panics() {
        let _ = highpass(16, 4_000.0, 32_000.0);
    }

    #[test]
    #[should_panic(expected = "f_lo < f_hi")]
    fn inverted_band_panics() {
        let _ = bandpass(31, 6_000.0, 3_000.0, 32_000.0);
    }

    proptest! {
        /// Any designed low-pass passes DC more strongly than 0.45·fs.
        #[test]
        fn lowpass_orders_bands(taps in 4usize..=64, fc_frac in 0.05f64..=0.4) {
            let fs = 48_000.0;
            let h = lowpass(taps, fc_frac * fs, fs);
            let dc = magnitude_at(&h, 0.0, fs);
            let hi = magnitude_at(&h, 0.49 * fs, fs);
            prop_assert!(dc > hi, "dc {dc} vs hi {hi}");
        }

        /// High-pass designs do the opposite.
        #[test]
        fn highpass_orders_bands(taps_half in 2usize..=32, fc_frac in 0.1f64..=0.35) {
            let fs = 48_000.0;
            let h = highpass(2 * taps_half + 1, fc_frac * fs, fs);
            let dc = magnitude_at(&h, 0.0, fs);
            let hi = magnitude_at(&h, 0.48 * fs, fs);
            prop_assert!(hi > dc, "dc {dc} vs hi {hi}");
        }
    }
}
