//! SNR metrics — the figure of merit of the paper's Fig. 19.

use crate::spectrum::{amplitude_spectrum, bin_frequency};

/// Signal-to-noise ratio, in dB, of a signal expected to be a pure
/// tone at `f0`: power in the `f0` bin (±1 bin for leakage) over the
/// power everywhere else (DC excluded).
///
/// This mirrors the paper's measurement: "the SNR of the sinusoidal
/// obtained at the FIR filter output".
///
/// # Panics
///
/// Panics on an empty signal or non-positive `fs`.
pub fn tone_snr(signal: &[f64], f0: f64, fs: f64) -> f64 {
    assert!(!signal.is_empty(), "empty signal");
    assert!(fs > 0.0, "sample rate must be positive");
    let n = signal.len();
    let spec = amplitude_spectrum(signal);
    // Locate the closest bin to f0.
    let target = (0..spec.len())
        .min_by(|&a, &b| {
            (bin_frequency(a, n, fs) - f0)
                .abs()
                .total_cmp(&(bin_frequency(b, n, fs) - f0).abs())
        })
        .expect("non-empty spectrum");
    let mut signal_power = 0.0;
    let mut noise_power = 0.0;
    for (k, &a) in spec.iter().enumerate() {
        if k == 0 {
            continue; // DC excluded
        }
        let p = a * a;
        if k.abs_diff(target) <= 1 {
            signal_power += p;
        } else {
            noise_power += p;
        }
    }
    10.0 * (signal_power / noise_power.max(f64::MIN_POSITIVE)).log10()
}

/// SNR, in dB, of `signal` against an explicit `reference`: reference
/// power over error power. Used when a golden waveform is available.
///
/// # Panics
///
/// Panics if lengths differ or both are empty.
pub fn reference_snr(signal: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(signal.len(), reference.len(), "length mismatch");
    assert!(!signal.is_empty(), "empty signals");
    let ref_power: f64 = reference.iter().map(|x| x * x).sum();
    let err_power: f64 = signal
        .iter()
        .zip(reference)
        .map(|(s, r)| (s - r) * (s - r))
        .sum();
    10.0 * (ref_power / err_power.max(f64::MIN_POSITIVE)).log10()
}

/// Converts a power ratio to dB.
pub fn to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn tone(n: usize, cycles: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (TAU * cycles * i as f64 / n as f64).sin())
            .collect()
    }

    #[test]
    fn clean_tone_has_high_snr() {
        let fs = 32_000.0;
        let x = tone(512, 16.0, 1.0); // 1 kHz at 32 kHz/512 bins
        let snr = tone_snr(&x, 1_000.0, fs);
        assert!(snr > 60.0, "snr {snr}");
    }

    #[test]
    fn added_noise_lowers_snr() {
        let fs = 32_000.0;
        let mut x = tone(512, 16.0, 1.0);
        // Deterministic pseudo-noise.
        for (i, v) in x.iter_mut().enumerate() {
            *v += 0.1 * (((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5);
        }
        let snr = tone_snr(&x, 1_000.0, fs);
        assert!(snr < 40.0 && snr > 5.0, "snr {snr}");
    }

    #[test]
    fn interferer_counts_as_noise() {
        let fs = 32_000.0;
        let mut x = tone(512, 16.0, 1.0);
        let interferer = tone(512, 112.0, 0.5); // 7 kHz
        for (a, b) in x.iter_mut().zip(&interferer) {
            *a += b;
        }
        let snr = tone_snr(&x, 1_000.0, fs);
        // Power ratio 1 / 0.25 = 6 dB.
        assert!((snr - 6.0).abs() < 0.5, "snr {snr}");
    }

    #[test]
    fn reference_snr_behaviour() {
        let r = tone(256, 8.0, 1.0);
        let clean = reference_snr(&r, &r);
        assert!(clean > 100.0);
        let half: Vec<f64> = r.iter().map(|x| 0.5 * x).collect();
        // Error power = (0.5)² of reference → 6 dB.
        let snr = reference_snr(&half, &r);
        assert!((snr - 6.02).abs() < 0.1, "snr {snr}");
    }

    #[test]
    fn to_db_is_log10() {
        assert!((to_db(100.0) - 20.0).abs() < 1e-12);
        assert!((to_db(1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn reference_snr_length_mismatch_panics() {
        let _ = reference_snr(&[1.0], &[1.0, 2.0]);
    }
}
