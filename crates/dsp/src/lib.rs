//! # usfq-dsp — DSP support for the U-SFQ accuracy experiments
//!
//! The paper's §5.4.1 experiment uses Octave to synthesise a multi-tone
//! test signal, design a 16-tap low-pass FIR, and measure SNR under
//! fault injection. This crate is that toolbox:
//!
//! * [`signal`] — sinusoid synthesis and superposition;
//! * [`design`] — windowed-sinc low-pass FIR design (Hamming window);
//! * [`spectrum`] — a naive DFT and a radix-2 FFT with amplitude
//!   spectra;
//! * [`metrics`] — tone-referenced SNR, the figure of merit of Fig. 19.
//!
//! ```
//! use usfq_dsp::{design, metrics, signal};
//!
//! let fs = 32_000.0;
//! let x = signal::multi_tone(&[(1_000.0, 1.0)], fs, 512);
//! let h = design::lowpass(16, 3_000.0, fs);
//! // Filtering a clean 1 kHz tone with a 3 kHz low-pass barely
//! // changes it:
//! let snr = metrics::tone_snr(&x, 1_000.0, fs);
//! assert!(snr > 30.0);
//! # let _ = h;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design;
pub mod metrics;
pub mod signal;
pub mod spectrum;
