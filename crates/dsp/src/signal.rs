//! Test-signal synthesis.

use std::f64::consts::TAU;

/// Samples a sum of sinusoids `Σ aᵢ·sin(2π fᵢ t)` at rate `fs` for `n`
/// samples. `tones` is a list of `(frequency_hz, amplitude)` pairs.
///
/// # Panics
///
/// Panics if `fs` is not positive or any tone violates Nyquist.
pub fn multi_tone(tones: &[(f64, f64)], fs: f64, n: usize) -> Vec<f64> {
    assert!(fs > 0.0, "sample rate must be positive");
    for &(f, _) in tones {
        assert!(
            f >= 0.0 && f < fs / 2.0,
            "tone {f} Hz violates Nyquist at fs {fs}"
        );
    }
    (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            tones.iter().map(|&(f, a)| a * (TAU * f * t).sin()).sum()
        })
        .collect()
}

/// The paper's §5.4.1 test input: sinusoids at 1, 7, 8, and 9 kHz with
/// equal amplitudes, scaled so the sum stays within `[−1, 1]` ("inputs
/// are scaled to avoid overflow errors").
pub fn paper_test_signal(fs: f64, n: usize) -> Vec<f64> {
    let amp = 1.0 / 4.0;
    multi_tone(
        &[
            (1_000.0, amp),
            (7_000.0, amp),
            (8_000.0, amp),
            (9_000.0, amp),
        ],
        fs,
        n,
    )
}

/// Peak absolute value of a signal.
pub fn peak(signal: &[f64]) -> f64 {
    signal.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Root-mean-square of a signal.
pub fn rms(signal: &[f64]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    (signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tone_rms() {
        let x = multi_tone(&[(1000.0, 1.0)], 32_000.0, 3200);
        // Sine RMS is 1/√2.
        assert!((rms(&x) - 1.0 / 2.0f64.sqrt()).abs() < 1e-3);
        assert!(peak(&x) <= 1.0 + 1e-12);
    }

    #[test]
    fn paper_signal_is_bounded() {
        let x = paper_test_signal(32_000.0, 4096);
        assert!(peak(&x) <= 1.0);
        assert!(rms(&x) > 0.1);
    }

    #[test]
    fn empty_and_zero() {
        assert_eq!(rms(&[]), 0.0);
        let x = multi_tone(&[], 1000.0, 8);
        assert_eq!(x, vec![0.0; 8]);
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn nyquist_violation_panics() {
        let _ = multi_tone(&[(20_000.0, 1.0)], 32_000.0, 8);
    }
}
