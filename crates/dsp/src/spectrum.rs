//! Frequency analysis: a naive DFT (reference), a radix-2 FFT, and
//! amplitude spectra.

use std::f64::consts::TAU;

/// A complex number, minimal and local — the only consumer is this
/// module's transforms.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Builds a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }

    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }

    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

/// Naive O(n²) DFT of a real signal — the reference implementation.
pub fn dft(signal: &[f64]) -> Vec<Complex> {
    let n = signal.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (t, &x) in signal.iter().enumerate() {
                let phi = -TAU * k as f64 * t as f64 / n as f64;
                acc = acc.add(Complex::new(x * phi.cos(), x * phi.sin()));
            }
            acc
        })
        .collect()
}

/// Iterative radix-2 FFT of a real signal.
///
/// # Panics
///
/// Panics unless the length is a power of two.
pub fn fft(signal: &[f64]) -> Vec<Complex> {
    let n = signal.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -TAU / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2].mul(w);
                buf[start + k] = u.add(v);
                buf[start + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
    buf
}

/// Single-sided amplitude spectrum: `2|X_k|/n` for bins `0..n/2`
/// (bin 0 unscaled by the factor 2).
pub fn amplitude_spectrum(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    let transform = if n.is_power_of_two() {
        fft(signal)
    } else {
        dft(signal)
    };
    transform
        .iter()
        .take(n / 2 + 1)
        .enumerate()
        .map(|(k, c)| {
            let scale = if k == 0 { 1.0 } else { 2.0 };
            scale * c.abs() / n as f64
        })
        .collect()
}

/// Frequency in Hz of spectrum bin `k` for an `n`-point transform at
/// sample rate `fs`.
pub fn bin_frequency(k: usize, n: usize, fs: f64) -> f64 {
    k as f64 * fs / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn tone(n: usize, cycles: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (TAU * cycles * i as f64 / n as f64).sin())
            .collect()
    }

    #[test]
    fn fft_matches_dft() {
        let x: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.37).sin() + 0.3 * (i as f64 * 1.7).cos())
            .collect();
        let a = dft(&x);
        let b = fft(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u.re - v.re).abs() < 1e-9);
            assert!((u.im - v.im).abs() < 1e-9);
        }
    }

    #[test]
    fn spectrum_finds_the_tone() {
        let n = 256;
        let x = tone(n, 16.0, 0.8);
        let spec = amplitude_spectrum(&x);
        let (peak_bin, peak) = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert_eq!(peak_bin, 16);
        assert!((peak - 0.8).abs() < 1e-9);
    }

    #[test]
    fn non_power_of_two_falls_back_to_dft() {
        let x = tone(100, 10.0, 1.0);
        let spec = amplitude_spectrum(&x);
        let peak_bin = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak_bin, 10);
    }

    #[test]
    fn bin_frequency_mapping() {
        assert_eq!(bin_frequency(16, 512, 32_000.0), 1_000.0);
        assert_eq!(bin_frequency(0, 512, 32_000.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_odd_lengths() {
        let _ = fft(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<f64> = (0..128)
            .map(|i| ((i * 7 % 13) as f64 - 6.0) / 6.0)
            .collect();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 =
            fft(&x).iter().map(|c| c.abs() * c.abs()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }
}
